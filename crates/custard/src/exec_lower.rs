//! Lowering concrete index notation to *executable* SAM graphs.
//!
//! [`crate::lower()`] produces the schematic graphs used for primitive
//! counting (Table 1), the ablation study and DOT export; its edges carry no
//! port annotations and its reference streams are not fully routed, so the
//! graphs cannot run. [`lower_exec`] is the executable counterpart: it
//! emits, through `sam_core::build::GraphBuilder`, a graph whose reference
//! streams thread through every merger and repeater exactly like the
//! hand-wired kernels, ready for `sam-exec` to plan and run on any backend.
//!
//! The supported fragment is nearly the full parseable language: products,
//! sums and mixed additive/multiplicative expressions of tensor accesses
//! (residual, MatTransMul), merges of any arity, scalar literals and
//! zero-index scalar accesses, and nested sum reductions. What still
//! returns a typed [`LowerExecError`]: terms with no indexed access to
//! drive iteration (`b(i) + 2`), a tensor read twice (bindings are by
//! name), sums with an operand that is dense (broadcast) at a co-iterated
//! variable (`b(i) * (c(i) + d(j))` at `i` — the union would have to
//! enumerate the whole dimension), and reduction structures with no
//! streaming reducer assignment (several non-innermost reduction
//! variables, or an accumulator reducer alongside a union). Lowering
//! proceeds in four phases:
//!
//! 1. **Iteration and merging** — one level scanner per (access, index
//!    variable); where several accesses co-iterate a variable, the merge
//!    *follows the expression tree*: operands of a multiplication intersect,
//!    operands of an addition or subtraction union, so a mixed expression
//!    gets union mergers at its additive co-iterations and intersecters at
//!    its multiplicative ones. Merges of more than two operands chain
//!    binary mergers; the already-merged side's extra reference streams are
//!    re-aligned to the new output coordinate space by *realignment
//!    mergers* — parallel mergers over the same coordinate pair whose ref
//!    lanes carry the references that did not fit through the primary
//!    merger (a unioner/intersecter never inspects reference payloads, so
//!    any stream aligned with its coordinate input threads through
//!    faithfully).
//! 2. **Values and compute** — a value array per indexed access and one ALU
//!    per operator, built by structural recursion over the expression so
//!    non-left-deep trees associate correctly. Literals and zero-index
//!    accesses become [`ConstVal`](sam_core::graph::NodeKind::ConstVal)
//!    source nodes shaped by the value stream they multiply.
//! 3. **Reduction** — reducers are inserted *at* each `Reduce` node of the
//!    expression (not globally at the tail), so a reduction nested under an
//!    addition (residual) closes before the outer ALU consumes it. Within a
//!    reduced subterm, reduction variables forming the innermost loop
//!    suffix use chained scalar reducers; a single non-innermost reduction
//!    variable uses a vector or matrix accumulator (Definition 3.7).
//! 4. **Output construction** — one level writer per target variable over
//!    that variable's final merged coordinate stream, plus the values
//!    writer.
//!
//! When [`LowerOptions::skip_edges`] is set (the default), binary
//! intersections whose two operands' level formats differ in density (one
//! dense, one compressed) are emitted with the Section 4.2 coordinate-skip
//! feedback edges, so compiled sparse-×-dense kernels get the executor's
//! galloping fusion without hand wiring.

use crate::cin::ConcreteIndexNotation;
use crate::lower::access_under_reduction;
use sam_core::build::{GraphBuilder, Port};
use sam_core::graph::SamGraph;
use sam_tensor::expr::{Expr, IndexVar};
use sam_tensor::{LevelFormat, TensorFormat};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An expression the executable lowering cannot handle (yet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerExecError {
    /// A tensor is read more than once (bindings are by name).
    DuplicateAccess {
        /// The tensor read twice.
        tensor: String,
    },
    /// A term carries no indexed tensor access, so nothing drives its
    /// iteration space (a bare literal sum operand, a reduction over
    /// constants, or a constant right-hand side).
    ConstantTerm,
    /// One side of an addition/subtraction has no coordinates at a
    /// co-iterated index variable but would be broadcast over it (e.g.
    /// `b(i) * (c(i) + d(j))` at `i`): the union would have to cover the
    /// whole dimension, which the sparse iteration space cannot enumerate.
    BroadcastAddend {
        /// The index variable.
        index: IndexVar,
    },
    /// The reduction structure has no streaming reducer assignment (e.g.
    /// several non-innermost reduction variables).
    UnsupportedReduction,
    /// A target index variable never appears on the right-hand side.
    UndrivenTarget {
        /// The index variable.
        index: IndexVar,
    },
    /// The compute tree did not consume every access exactly once — an
    /// internal lowering invariant, promoted to a typed error so a release
    /// build fails loudly instead of mis-wiring the compute tree.
    ComputeTreeMismatch {
        /// Accesses the expression holds.
        expected: usize,
        /// Accesses the compute tree visited.
        visited: usize,
    },
    /// Phase-1 merging dropped or duplicated an operand's reference stream
    /// at one index variable — an internal invariant of the chained
    /// realignment mergers, promoted to a typed error.
    MergeRefMismatch {
        /// The index variable being merged.
        index: IndexVar,
        /// Scanned producers at that variable.
        producers: usize,
        /// Reference streams the merge tree re-aligned.
        aligned: usize,
    },
}

impl fmt::Display for LowerExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerExecError::DuplicateAccess { tensor } => {
                write!(f, "tensor `{tensor}` is read more than once")
            }
            LowerExecError::ConstantTerm => {
                write!(f, "a term contains no indexed tensor access to drive iteration")
            }
            LowerExecError::BroadcastAddend { index } => {
                write!(f, "a sum operand is dense (broadcast) at `{index}`; the union cannot enumerate it")
            }
            LowerExecError::UnsupportedReduction => {
                write!(f, "reduction structure has no streaming reducer assignment")
            }
            LowerExecError::UndrivenTarget { index } => {
                write!(f, "target variable `{index}` does not appear on the right-hand side")
            }
            LowerExecError::ComputeTreeMismatch { expected, visited } => {
                write!(f, "compute tree visited {visited} of {expected} accesses (lowering bug)")
            }
            LowerExecError::MergeRefMismatch { index, producers, aligned } => {
                write!(
                    f,
                    "merging `{index}` re-aligned {aligned} of {producers} reference streams \
                     (lowering bug)"
                )
            }
        }
    }
}

impl std::error::Error for LowerExecError {}

/// Knobs of the executable lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// Emit Section 4.2 coordinate-skip feedback edges on binary
    /// intersections whose operands' level formats differ in density (one
    /// dense, one compressed): the dense side can gallop in O(1), so the
    /// sparse side drives and skipped coordinates are never streamed.
    pub skip_edges: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions { skip_edges: true }
    }
}

/// An executable graph plus the storage format each operand must be bound
/// with (levels ordered by the dataflow's iteration order).
#[derive(Debug, Clone)]
pub struct ExecutableKernel {
    /// The executable SAM graph.
    pub graph: SamGraph,
    /// Per-operand storage formats for the indexed accesses, in access
    /// order.
    pub formats: Vec<(String, TensorFormat)>,
    /// Zero-index (scalar) operands, in access order; each must be bound as
    /// a single-value tensor.
    pub scalars: Vec<String>,
}

impl ExecutableKernel {
    /// Runs the structural static verifier (`sam-verify`) over the lowered
    /// graph: port protocol, acyclicity, skip-lane contract, writer rules,
    /// plus all graph lints. Binding-level rules (formats, ranks, scalars)
    /// need the executor's planning path, which verifies against the bound
    /// tensors.
    pub fn verify(&self) -> sam_verify::Report {
        sam_verify::verify(&self.graph)
    }
}

/// One scanned operand of an index variable: the scanner's outputs plus the
/// level format (which the skip heuristic consults).
#[derive(Clone, Copy)]
struct ScanProducer {
    crd: Port,
    rf: Port,
    level: LevelFormat,
}

/// A (possibly chained) merge result at one index variable: the merged
/// coordinate stream and, per participating access ordinal, a reference
/// stream aligned with it.
struct Merged {
    crd: Port,
    refs: Vec<(usize, Port)>,
    /// The level format when `crd` is still a raw scanner output (skip
    /// heuristic input); `None` once anything merged.
    scan_fmt: Option<LevelFormat>,
}

/// Merges the scanned producers of `var` following the expression tree:
/// intersect under multiplication, union under addition/subtraction.
/// `next` walks the accesses in `Expr::accesses` order; `broadcasts`
/// answers whether the access at an ordinal would be *broadcast* over
/// `var` (phase 1's repeater-placement rule).
///
/// An Add/Sub side with no producer at `var` is harmless when it has no
/// presence at `var` at all (residual's `b(i)` while merging `j`: the
/// reduction closes before the subtraction). But a side that would be
/// broadcast over `var` is dense there — `b(i) * (c(i) + d(j))` at `i`
/// would need the union to cover the whole dimension, which the sparse
/// iteration space cannot enumerate — so that shape is a typed error, not
/// a silent collapse onto the scanned side.
fn merge_for_var(
    g: &mut GraphBuilder,
    expr: &Expr,
    var: IndexVar,
    producers: &BTreeMap<usize, ScanProducer>,
    next: &mut usize,
    skip_edges: bool,
    broadcasts: &dyn Fn(usize, IndexVar) -> bool,
) -> Result<Option<Merged>, LowerExecError> {
    match expr {
        Expr::Access { .. } => {
            let ordinal = *next;
            *next += 1;
            Ok(producers.get(&ordinal).map(|p| Merged {
                crd: p.crd,
                refs: vec![(ordinal, p.rf)],
                scan_fmt: Some(p.level),
            }))
        }
        Expr::Literal(_) => Ok(None),
        Expr::Mul(a, b) | Expr::Add(a, b) | Expr::Sub(a, b) => {
            let union = !matches!(expr, Expr::Mul(..));
            let a_start = *next;
            let ma = merge_for_var(g, a, var, producers, next, skip_edges, broadcasts)?;
            let b_start = *next;
            let mb = merge_for_var(g, b, var, producers, next, skip_edges, broadcasts)?;
            let b_end = *next;
            let dense_addend = |range: std::ops::Range<usize>| range.clone().any(|o| broadcasts(o, var));
            match (ma, mb) {
                (Some(a), Some(b)) => Ok(Some(combine(g, var, a, b, union, skip_edges))),
                (Some(m), None) => {
                    if union && dense_addend(b_start..b_end) {
                        return Err(LowerExecError::BroadcastAddend { index: var });
                    }
                    Ok(Some(m))
                }
                (None, Some(m)) => {
                    if union && dense_addend(a_start..b_start) {
                        return Err(LowerExecError::BroadcastAddend { index: var });
                    }
                    Ok(Some(m))
                }
                (None, None) => Ok(None),
            }
        }
        Expr::Reduce { body, .. } => merge_for_var(g, body, var, producers, next, skip_edges, broadcasts),
    }
}

/// Combines two merged sides with one primary binary merger plus one
/// realignment merger per reference stream beyond the first on each side.
fn combine(g: &mut GraphBuilder, var: IndexVar, a: Merged, b: Merged, union: bool, skip: bool) -> Merged {
    // The Section 4.2 skip heuristic: a plain binary intersection of two
    // raw scanner outputs whose levels differ in density. Realignment
    // mergers would fan the scanner outputs out past the intersecter, which
    // the planner's skip validation (rightly) rejects, so chains stay plain.
    let single = a.refs.len() == 1 && b.refs.len() == 1;
    let use_skip = !union
        && skip
        && single
        && match (a.scan_fmt, b.scan_fmt) {
            (Some(fa), Some(fb)) => (fa == LevelFormat::Dense) != (fb == LevelFormat::Dense),
            _ => false,
        };
    let crds = [a.crd, b.crd];
    let primary = [a.refs[0].1, b.refs[0].1];
    let (crd, out_refs) = if union {
        g.union(var, crds, primary)
    } else if use_skip {
        g.intersect_with_skip(var, crds, primary)
    } else {
        g.intersect(var, crds, primary)
    };
    let mut refs = vec![(a.refs[0].0, out_refs[0]), (b.refs[0].0, out_refs[1])];
    // Realignment mergers: same coordinate pair, one leftover reference
    // through the matching ref lane; the other lanes' outputs dangle.
    for &(ordinal, rf) in &a.refs[1..] {
        let (_, extra) = if union {
            g.union(var, crds, [rf, b.refs[0].1])
        } else {
            g.intersect(var, crds, [rf, b.refs[0].1])
        };
        refs.push((ordinal, extra[0]));
    }
    for &(ordinal, rf) in &b.refs[1..] {
        let (_, extra) = if union {
            g.union(var, crds, [a.refs[0].1, rf])
        } else {
            g.intersect(var, crds, [a.refs[0].1, rf])
        };
        refs.push((ordinal, extra[1]));
    }
    Merged { crd, refs, scan_fmt: None }
}

/// A constant operand gathered while walking a product: a literal or a
/// zero-index scalar access, to be attached as a `ConstVal` source once a
/// value stream provides the shape.
enum ConstAtom {
    Lit(f64),
    Scalar(String),
}

/// The result of lowering a subexpression's values: a value stream, or
/// constants still waiting for a stream to shape them.
enum Built {
    Stream(Port),
    Consts(Vec<ConstAtom>),
}

/// Everything the compute-tree recursion reads besides the expression.
struct ComputeCx<'a> {
    loop_order: &'a [IndexVar],
    target_indices: &'a [IndexVar],
    reduction_vars: &'a [IndexVar],
    rhs: &'a Expr,
    storage_vars: &'a [Vec<IndexVar>],
    arrays: &'a [Option<Port>],
    scalar_names: &'a [Option<String>],
    has_additive: bool,
}

impl ComputeCx<'_> {
    /// The loop variables structuring a subterm's value stream: every
    /// variable one of its accesses scans, plus every variable one of them
    /// is broadcast over (mirroring the phase-1 repeater placement).
    fn term_vars(
        &self,
        ordinals: std::ops::Range<usize>,
        var_crd: &BTreeMap<IndexVar, Port>,
    ) -> Vec<IndexVar> {
        self.loop_order
            .iter()
            .copied()
            .filter(|v| var_crd.contains_key(v))
            .filter(|v| {
                ordinals.clone().any(|o| {
                    self.storage_vars[o].contains(v)
                        || (self.scalar_names[o].is_none()
                            && (self.target_indices.contains(v)
                                || (self.reduction_vars.contains(v)
                                    && access_under_reduction(self.rhs, o, *v))))
                })
            })
            .collect()
    }
}

/// Attaches constant atoms to a value stream: one `ConstVal` source (shaped
/// by the running stream) and one multiply ALU per atom.
fn attach_consts(g: &mut GraphBuilder, mut stream: Port, atoms: &[ConstAtom], const_left: bool) -> Port {
    for atom in atoms.iter().rev() {
        let cport = match atom {
            ConstAtom::Lit(v) => g.literal(*v, stream),
            ConstAtom::Scalar(name) => g.scalar_source(name, stream),
        };
        stream = if const_left { g.alu("mul", cport, stream) } else { g.alu("mul", stream, cport) };
    }
    stream
}

/// Applies the reducers for `vars` to `tail`, selecting chained scalar
/// reducers for an innermost suffix and a vector/matrix accumulator for a
/// single non-innermost variable (Definition 3.7).
fn apply_reduce(
    g: &mut GraphBuilder,
    cx: &ComputeCx<'_>,
    var_crd: &mut BTreeMap<IndexVar, Port>,
    vars: &[IndexVar],
    term: &[IndexVar],
    mut tail: Port,
) -> Result<Port, LowerExecError> {
    let positions: Vec<usize> = vars
        .iter()
        .map(|v| term.iter().position(|tv| tv == v).ok_or(LowerExecError::UnsupportedReduction))
        .collect::<Result<_, _>>()?;
    let innermost_suffix = positions.iter().all(|&p| p >= term.len() - vars.len());
    if innermost_suffix {
        for _ in vars {
            tail = g.reduce_scalar(tail);
        }
        return Ok(tail);
    }
    if vars.len() != 1 || cx.has_additive {
        // Accumulator reducers re-emit coordinate streams; interleaving
        // that with union-merged siblings has no sound alignment yet.
        return Err(LowerExecError::UnsupportedReduction);
    }
    let below: Vec<IndexVar> = term[positions[0] + 1..].to_vec();
    if !below.iter().all(|v| cx.target_indices.contains(v)) {
        return Err(LowerExecError::UnsupportedReduction);
    }
    match below.len() {
        1 => {
            let crd = var_crd[&below[0]];
            let (out_crd, out_val) = g.reduce_vector(crd, tail);
            var_crd.insert(below[0], out_crd);
            Ok(out_val)
        }
        2 => {
            let crds = [var_crd[&below[0]], var_crd[&below[1]]];
            let (out_crds, out_val) = g.reduce_matrix(crds, tail);
            var_crd.insert(below[0], out_crds[0]);
            var_crd.insert(below[1], out_crds[1]);
            Ok(out_val)
        }
        _ => Err(LowerExecError::UnsupportedReduction),
    }
}

/// Builds the value/compute tree for `expr`, inserting reducers at each
/// `Reduce` node. `next` walks the accesses in `Expr::accesses` order.
fn build_compute(
    g: &mut GraphBuilder,
    cx: &ComputeCx<'_>,
    var_crd: &mut BTreeMap<IndexVar, Port>,
    expr: &Expr,
    next: &mut usize,
) -> Result<Built, LowerExecError> {
    match expr {
        Expr::Access { tensor, indices } => {
            let ordinal = *next;
            *next += 1;
            if indices.is_empty() {
                Ok(Built::Consts(vec![ConstAtom::Scalar(tensor.clone())]))
            } else {
                Ok(Built::Stream(cx.arrays[ordinal].expect("indexed access has an array")))
            }
        }
        Expr::Literal(v) => Ok(Built::Consts(vec![ConstAtom::Lit(*v)])),
        Expr::Mul(a, b) => {
            let la = build_compute(g, cx, var_crd, a, next)?;
            let lb = build_compute(g, cx, var_crd, b, next)?;
            Ok(match (la, lb) {
                (Built::Stream(x), Built::Stream(y)) => Built::Stream(g.alu("mul", x, y)),
                (Built::Stream(x), Built::Consts(atoms)) => Built::Stream(attach_consts(g, x, &atoms, false)),
                (Built::Consts(atoms), Built::Stream(y)) => Built::Stream(attach_consts(g, y, &atoms, true)),
                (Built::Consts(mut a), Built::Consts(b)) => {
                    a.extend(b);
                    Built::Consts(a)
                }
            })
        }
        Expr::Add(a, b) | Expr::Sub(a, b) => {
            let op = if matches!(expr, Expr::Add(..)) { "add" } else { "sub" };
            let la = build_compute(g, cx, var_crd, a, next)?;
            let lb = build_compute(g, cx, var_crd, b, next)?;
            // A constant sum operand has no iteration space of its own
            // (`b(i) + 1` is dense everywhere), so it stays rejected.
            let (Built::Stream(x), Built::Stream(y)) = (la, lb) else {
                return Err(LowerExecError::ConstantTerm);
            };
            Ok(Built::Stream(g.alu(op, x, y)))
        }
        Expr::Reduce { vars, body } => {
            let start = *next;
            let inner = build_compute(g, cx, var_crd, body, next)?;
            let Built::Stream(tail) = inner else {
                return Err(LowerExecError::ConstantTerm);
            };
            let term = cx.term_vars(start..*next, var_crd);
            Ok(Built::Stream(apply_reduce(g, cx, var_crd, vars, &term, tail)?))
        }
    }
}

/// Lowers concrete index notation to an executable SAM graph with the
/// default [`LowerOptions`].
///
/// ```
/// use custard::{lower_exec, parse, ConcreteIndexNotation, Formats, Schedule};
/// let a = parse("x(i) = B(i,j) * c(j)").unwrap();
/// let cin = ConcreteIndexNotation::new(a, &Schedule::new(), Formats::new());
/// let kernel = lower_exec(&cin).unwrap();
/// assert_eq!(kernel.formats.len(), 2);
/// assert!(kernel.graph.edges().iter().all(|e| e.src_port.is_some()));
/// ```
///
/// # Errors
///
/// Returns a [`LowerExecError`] when the expression falls outside the
/// executable fragment; see the module docs.
pub fn lower_exec(cin: &ConcreteIndexNotation) -> Result<ExecutableKernel, LowerExecError> {
    lower_exec_with(cin, LowerOptions::default())
}

/// [`lower_exec`] with explicit [`LowerOptions`] (e.g. to ablate the
/// skip-edge heuristic).
///
/// # Errors
///
/// Returns a [`LowerExecError`] when the expression falls outside the
/// executable fragment; see the module docs.
pub fn lower_exec_with(
    cin: &ConcreteIndexNotation,
    opts: LowerOptions,
) -> Result<ExecutableKernel, LowerExecError> {
    let assignment = &cin.assignment;
    let rhs = &assignment.rhs;

    let accesses = rhs.accesses();
    {
        let mut seen = BTreeSet::new();
        for (name, _) in &accesses {
            if !seen.insert(*name) {
                return Err(LowerExecError::DuplicateAccess { tensor: name.to_string() });
            }
        }
    }
    let reduction_vars: Vec<IndexVar> = assignment.reduction_vars();

    // Derive each indexed operand's storage format: levels follow the loop
    // order's projection onto the access's index variables; per-mode level
    // formats come from the user's format declarations, defaulting to
    // compressed. Zero-index accesses carry no storage; they are collected
    // as scalars and lowered to `ConstVal` sources in phase 2.
    let mut formats: Vec<(String, TensorFormat)> = Vec::new();
    let mut scalars: Vec<String> = Vec::new();
    let mut scalar_names: Vec<Option<String>> = Vec::new();
    let mut storage_vars: Vec<Vec<IndexVar>> = Vec::new();
    let mut level_formats: Vec<Vec<LevelFormat>> = Vec::new();
    for (name, indices) in &accesses {
        if indices.is_empty() {
            scalars.push(name.to_string());
            scalar_names.push(Some(name.to_string()));
            storage_vars.push(Vec::new());
            level_formats.push(Vec::new());
            continue;
        }
        let vars: Vec<IndexVar> = cin.loop_order.iter().copied().filter(|v| indices.contains(v)).collect();
        let mode_order: Vec<usize> =
            vars.iter().map(|v| indices.iter().position(|iv| iv == v).expect("var from access")).collect();
        let levels: Vec<LevelFormat> = mode_order
            .iter()
            .map(|&m| {
                cin.formats
                    .get(name)
                    .and_then(|f| f.mode_order().iter().position(|&fm| fm == m).map(|l| f.levels()[l]))
                    .unwrap_or(LevelFormat::Compressed)
            })
            .collect();
        formats.push((name.to_string(), TensorFormat::with_mode_order(levels.clone(), mode_order)));
        scalar_names.push(None);
        storage_vars.push(vars);
        level_formats.push(levels);
    }

    let mut g = GraphBuilder::new(assignment.to_string());
    let mut cur_ref: Vec<Option<Port>> = accesses
        .iter()
        .enumerate()
        .map(|(o, (name, _))| if scalar_names[o].is_some() { None } else { Some(g.root(name)) })
        .collect();
    let mut scan_depth = vec![0usize; accesses.len()];
    let mut var_crd: BTreeMap<IndexVar, Port> = BTreeMap::new();

    // Whether the access at `ordinal` is broadcast (repeated) over `var` —
    // phase 1's repeater-placement rule, also consulted by the merge tree
    // to reject dense addends.
    let broadcasts = |ordinal: usize, var: IndexVar| -> bool {
        !storage_vars[ordinal].contains(&var)
            && scalar_names[ordinal].is_none()
            && (assignment.target_indices.contains(&var)
                || (reduction_vars.contains(&var) && access_under_reduction(rhs, ordinal, var)))
    };

    // Phase 1: iteration and merging, one loop level at a time.
    for &var in &cin.loop_order {
        let mut producers: BTreeMap<usize, ScanProducer> = BTreeMap::new();
        for (ordinal, (name, _)) in accesses.iter().enumerate() {
            if !storage_vars[ordinal].contains(&var) {
                continue;
            }
            let level = level_formats[ordinal][scan_depth[ordinal]];
            let compressed = !matches!(level, LevelFormat::Dense);
            let (crd, rf) = g.scan(name, var, compressed, cur_ref[ordinal].expect("indexed root"));
            scan_depth[ordinal] += 1;
            cur_ref[ordinal] = Some(rf);
            producers.insert(ordinal, ScanProducer { crd, rf, level });
        }
        if producers.is_empty() {
            continue;
        }
        let merged_crd = {
            // The merge tree also runs for a single producer: it builds no
            // mergers then, but still rejects dense (broadcast) addends
            // that a union could not enumerate.
            let n_producers = producers.len();
            let mut next = 0;
            let merged =
                merge_for_var(&mut g, rhs, var, &producers, &mut next, opts.skip_edges, &broadcasts)?
                    .expect("producers are nonempty");
            if merged.refs.len() != n_producers {
                return Err(LowerExecError::MergeRefMismatch {
                    index: var,
                    producers: n_producers,
                    aligned: merged.refs.len(),
                });
            }
            for (ordinal, rf) in &merged.refs {
                cur_ref[*ordinal] = Some(*rf);
            }
            merged.crd
        };
        // Broadcast operands that skip this variable but are consumed once
        // per coordinate of it.
        for (ordinal, (name, _)) in accesses.iter().enumerate() {
            if storage_vars[ordinal].contains(&var) || scalar_names[ordinal].is_some() {
                continue;
            }
            if broadcasts(ordinal, var) {
                let prev = cur_ref[ordinal].expect("indexed root");
                cur_ref[ordinal] = Some(g.repeat(name, var, merged_crd, prev));
            }
        }
        var_crd.insert(var, merged_crd);
    }

    // Phase 2: value loads and the compute tree (reducers inline at each
    // `Reduce` node); accesses are visited in `Expr::accesses` order.
    let arrays: Vec<Option<Port>> =
        accesses.iter().enumerate().map(|(o, (name, _))| cur_ref[o].map(|rf| g.array(name, rf))).collect();
    let cx = ComputeCx {
        loop_order: &cin.loop_order,
        target_indices: &assignment.target_indices,
        reduction_vars: &reduction_vars,
        rhs,
        storage_vars: &storage_vars,
        arrays: &arrays,
        scalar_names: &scalar_names,
        has_additive: rhs.has_additive_op(),
    };
    let mut next = 0;
    let built = build_compute(&mut g, &cx, &mut var_crd, rhs, &mut next)?;
    if next != accesses.len() {
        return Err(LowerExecError::ComputeTreeMismatch { expected: accesses.len(), visited: next });
    }
    let Built::Stream(mut tail) = built else {
        return Err(LowerExecError::ConstantTerm);
    };

    // Phase 3: reduction variables with no explicit `Reduce` node (legacy
    // Expr-API assignments) reduce at the tail, as the paper's loop nest
    // implies.
    let reduced: BTreeSet<IndexVar> = rhs.reduced_vars().into_iter().collect();
    let missing: Vec<IndexVar> = reduction_vars.iter().copied().filter(|v| !reduced.contains(v)).collect();
    if !missing.is_empty() {
        let term = cx.term_vars(0..accesses.len(), &var_crd);
        tail = apply_reduce(&mut g, &cx, &mut var_crd, &missing, &term, tail)?;
    }

    // Phase 4: output construction.
    for &var in &assignment.target_indices {
        let crd = var_crd.get(&var).ok_or(LowerExecError::UndrivenTarget { index: var })?;
        g.write_level(&assignment.target, var, *crd);
    }
    g.write_vals(&assignment.target, tail);

    let kernel = ExecutableKernel { graph: g.finish(), formats, scalars };
    // Every graph this lowering emits must pass the static verifier
    // structurally — a diagnostic here is a compiler bug, not a user error.
    debug_assert!(
        !kernel.verify().has_errors(),
        "lower_exec emitted a graph the static verifier rejects:\n{}",
        kernel.verify().render()
    );
    Ok(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cin::{Formats, Schedule};
    use crate::parser::parse;
    use sam_core::graph::{NodeKind, StreamKind};

    fn lower_text(text: &str, order: Option<&str>) -> Result<ExecutableKernel, LowerExecError> {
        let a = parse(text).unwrap();
        let schedule = match order {
            Some(o) => Schedule::new().reorder(o),
            None => Schedule::new(),
        };
        lower_exec(&ConcreteIndexNotation::new(a, &schedule, Formats::new()))
    }

    #[test]
    fn spmv_lowers_with_ported_edges() {
        let kernel = lower_text("x(i) = B(i,j) * c(j)", None).unwrap();
        assert!(kernel.graph.edges().iter().all(|e| e.src_port.is_some() && e.dst_port.is_some()));
        let c = kernel.graph.primitive_counts();
        assert_eq!(c.level_scan, 3);
        assert_eq!(c.intersect, 1);
        assert_eq!(c.repeat, 1);
        assert_eq!(c.reduce, 1);
        assert_eq!(c.level_write, 2);
    }

    #[test]
    fn spmm_orders_pick_matching_reducers() {
        let inner = lower_text("X(i,j) = B(i,k) * C(k,j)", Some("ijk")).unwrap();
        assert!(inner.graph.has_kind(|n| matches!(n, NodeKind::Reducer { order: 0 })));
        let gustavson = lower_text("X(i,j) = B(i,k) * C(k,j)", Some("ikj")).unwrap();
        assert!(gustavson.graph.has_kind(|n| matches!(n, NodeKind::Reducer { order: 1 })));
        let outer = lower_text("X(i,j) = B(i,k) * C(k,j)", Some("kij")).unwrap();
        assert!(outer.graph.has_kind(|n| matches!(n, NodeKind::Reducer { order: 2 })));
    }

    #[test]
    fn derived_formats_follow_loop_order() {
        let kernel = lower_text("X(i,j) = B(i,k) * C(k,j)", Some("ijk")).unwrap();
        let c_fmt = &kernel.formats.iter().find(|(n, _)| n == "C").unwrap().1;
        // Inner product iterates C by columns: storage order [j, k].
        assert_eq!(c_fmt.mode_order(), &[1, 0]);
    }

    #[test]
    fn additions_lower_to_unions() {
        let kernel = lower_text("X(i,j) = B(i,j) + C(i,j)", None).unwrap();
        assert!(kernel.graph.has_kind(|n| matches!(n, NodeKind::Unioner { .. })));
        assert!(!kernel.graph.has_kind(|n| matches!(n, NodeKind::Intersecter { .. })));
    }

    #[test]
    fn residual_selects_union_then_intersect() {
        // x(i) = b(i) - sum_j C(i,j)*d(j): the additive co-iteration at i
        // unions, the multiplicative one at j intersects, and the reducer
        // closes inside the subtraction.
        let kernel = lower_text("x(i) = b(i) - C(i,j) * d(j)", None).unwrap();
        let c = kernel.graph.primitive_counts();
        assert_eq!(c.union, 1);
        assert_eq!(c.intersect, 1);
        assert_eq!(c.reduce, 1);
        assert_eq!(c.alu, 2); // mul inside the sum, sub outside
        assert_eq!(c.repeat, 1); // d broadcast over i
        assert_eq!(c.array, 3);
        assert_eq!(c.level_write, 2);
    }

    #[test]
    fn nary_union_chains_with_realignment_mergers() {
        let kernel = lower_text("X(i,j) = B(i,j) + C(i,j) + D(i,j)", None).unwrap();
        let c = kernel.graph.primitive_counts();
        // Per variable: one primary chain of 2 unions plus 1 realignment
        // merger for the first pair's second reference stream.
        assert_eq!(c.union, 6);
        assert_eq!(c.intersect, 0);
        assert_eq!(c.alu, 2);
        assert_eq!(c.array, 3);
        assert_eq!(c.level_write, 3);
    }

    #[test]
    fn nary_intersect_chains() {
        let kernel = lower_text("x(i) = b(i) * c(i) * d(i)", None).unwrap();
        let c = kernel.graph.primitive_counts();
        assert_eq!(c.intersect, 3);
        assert_eq!(c.union, 0);
        assert_eq!(c.alu, 2);
    }

    #[test]
    fn literals_and_scalars_become_const_sources() {
        let kernel = lower_text("x(i) = 2.5 * b(i)", None).unwrap();
        assert!(kernel.graph.has_kind(|n| matches!(n, NodeKind::ConstVal { .. })));
        assert!(kernel.scalars.is_empty());

        let mtm = lower_text("x(i) = alpha * B(j,i) * c(j) + beta * d(i)", None).unwrap();
        assert_eq!(mtm.scalars, vec!["alpha".to_string(), "beta".to_string()]);
        let consts = mtm.graph.nodes().iter().filter(|n| matches!(n, NodeKind::ConstVal { .. })).count();
        assert_eq!(consts, 2);
        let c = mtm.graph.primitive_counts();
        assert_eq!(c.union, 1);
        assert_eq!(c.intersect, 1);
        assert_eq!(c.reduce, 1);
        // alpha*B, (alpha*B)*c, beta*d, term1+term2.
        assert_eq!(c.alu, 4);
        // Only B, c, d load values; the scalars ride on const sources.
        assert_eq!(c.array, 3);
    }

    #[test]
    fn skip_heuristic_fires_on_density_skew_only() {
        use sam_tensor::TensorFormat;
        let a = parse("x(i) = B(i,j) * c(j)").unwrap();
        // Dense vector against compressed matrix rows: skip edges appear.
        let dense_c = Formats::new().set("c", TensorFormat::dense_vec());
        let cin = ConcreteIndexNotation::new(a.clone(), &Schedule::new(), dense_c);
        let skipped = lower_exec(&cin).unwrap();
        let count = |g: &SamGraph| g.edges().iter().filter(|e| e.kind == StreamKind::Skip).count();
        assert_eq!(count(&skipped.graph), 2, "sparse-x-dense intersect should get both skip lanes");
        for e in skipped.graph.edges().iter().filter(|e| e.kind == StreamKind::Skip) {
            assert!(matches!(skipped.graph.nodes()[e.from.0], NodeKind::Intersecter { .. }));
            assert!(matches!(skipped.graph.nodes()[e.to.0], NodeKind::LevelScanner { .. }));
        }

        // Both compressed: no skew, no skip edges.
        let cin = ConcreteIndexNotation::new(a.clone(), &Schedule::new(), Formats::new());
        assert_eq!(count(&lower_exec(&cin).unwrap().graph), 0);

        // The knob disables emission outright.
        let dense_c = Formats::new().set("c", TensorFormat::dense_vec());
        let cin = ConcreteIndexNotation::new(a, &Schedule::new(), dense_c);
        let plain = lower_exec_with(&cin, LowerOptions { skip_edges: false }).unwrap();
        assert_eq!(count(&plain.graph), 0);
        // Skip edges are pure feedback wiring: same primitive structure.
        assert_eq!(plain.graph.primitive_counts(), skipped.graph.primitive_counts());
    }

    #[test]
    fn broadcast_addends_are_rejected_not_miscompiled() {
        // The sum is dense at `i` through the broadcast addend: collapsing
        // the union onto the scanned side would silently drop rows.
        assert_eq!(
            lower_text("x(i) = b(i) * (c(i) + d(j))", None).unwrap_err(),
            LowerExecError::BroadcastAddend { index: 'i' }
        );
        assert_eq!(
            lower_text("x(i) = c(i) + d(j)", None).unwrap_err(),
            LowerExecError::BroadcastAddend { index: 'i' }
        );
        // Residual-shaped absences stay fine: `b(i)` has no presence at `j`
        // because the reduction closes below the subtraction.
        assert!(lower_text("x(i) = b(i) - C(i,j) * d(j)", None).is_ok());
        // A same-variable sum nested under a product lowers to a union
        // feeding an intersection.
        let k = lower_text("X(i,j) = (b(i) + c(i)) * D(i,j)", None).unwrap();
        let c = k.graph.primitive_counts();
        assert_eq!(c.union, 1);
        // One primary intersect plus one realignment intersect re-aligning
        // the union's second reference stream.
        assert_eq!(c.intersect, 2);
    }

    #[test]
    fn unsupported_shapes_report_errors() {
        assert_eq!(
            lower_text("x(i) = B(i,j) * B(i,j)", None).unwrap_err(),
            LowerExecError::DuplicateAccess { tensor: "B".into() }
        );
        // A bare literal as a sum operand has no iteration space.
        assert_eq!(lower_text("x(i) = b(i) + 2", None).unwrap_err(), LowerExecError::ConstantTerm);
        assert_eq!(lower_text("x(i) = 3", None).unwrap_err(), LowerExecError::ConstantTerm);
    }

    #[test]
    fn mttkrp_uses_chained_scalar_reducers() {
        let kernel = lower_text("X(i,j) = B(i,k,l) * C(j,k) * D(j,l)", None).unwrap();
        let counts = kernel.graph.primitive_counts();
        assert_eq!(counts.reduce, 2);
        assert_eq!(counts.intersect, 3);
    }

    #[test]
    fn separate_reductions_close_before_their_sum() {
        // Two independently reduced terms added at the output variable:
        // each gets its own scalar reducer inside its own term.
        let kernel = lower_text("x(i) = B(i,j) * c(j) + C(i,k) * d(k)", None).unwrap();
        let counts = kernel.graph.primitive_counts();
        assert_eq!(counts.reduce, 2);
        assert_eq!(counts.union, 1);
        assert_eq!(counts.intersect, 2);
    }
}
