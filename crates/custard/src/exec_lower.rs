//! Lowering concrete index notation to *executable* SAM graphs.
//!
//! [`crate::lower()`] produces the schematic graphs used for primitive
//! counting (Table 1), the ablation study and DOT export; its edges carry no
//! port annotations and its reference streams are not fully routed, so the
//! graphs cannot run. [`lower_exec`] is the executable counterpart: it
//! emits, through `sam_core::build::GraphBuilder`, a graph whose reference
//! streams thread through every merger and repeater exactly like the
//! hand-wired kernels, ready for `sam-exec` to plan and run on either
//! backend.
//!
//! The supported fragment covers the paper's core kernels: pure products of
//! tensor accesses with an optional sum reduction (SpMV, SpM*SpM in all
//! three dataflow orders, SDDMM, TTV/TTM/MTTKRP-style contractions, matrix
//! and vector element-wise multiplication, identity) and pure sums (vector
//! and matrix addition). Mixed additive/multiplicative expressions,
//! literals, repeated reads of one tensor and merges of more than two
//! operands at one index variable report a typed [`LowerExecError`].

use crate::cin::ConcreteIndexNotation;
use crate::lower::access_under_reduction;
use sam_core::build::{GraphBuilder, Port};
use sam_core::graph::SamGraph;
use sam_tensor::expr::{Expr, IndexVar};
use sam_tensor::{LevelFormat, TensorFormat};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An expression the executable lowering cannot handle (yet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerExecError {
    /// The expression mixes additive and multiplicative operators.
    MixedExpression,
    /// The expression contains a scalar literal.
    Literal,
    /// A tensor is read more than once (bindings are by name).
    DuplicateAccess {
        /// The tensor read twice.
        tensor: String,
    },
    /// More than two operands co-iterate one index variable.
    NAryMerge {
        /// The index variable.
        index: IndexVar,
    },
    /// The reduction structure has no streaming reducer assignment (e.g.
    /// several non-innermost reduction variables).
    UnsupportedReduction,
    /// A target index variable never appears on the right-hand side.
    UndrivenTarget {
        /// The index variable.
        index: IndexVar,
    },
    /// A scalar (zero-index) tensor access.
    ScalarAccess {
        /// The tensor accessed without indices.
        tensor: String,
    },
}

impl fmt::Display for LowerExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerExecError::MixedExpression => {
                write!(f, "mixed additive/multiplicative expressions are not executable yet")
            }
            LowerExecError::Literal => write!(f, "literal operands are not executable yet"),
            LowerExecError::DuplicateAccess { tensor } => {
                write!(f, "tensor `{tensor}` is read more than once")
            }
            LowerExecError::NAryMerge { index } => {
                write!(f, "more than two operands merge at `{index}`")
            }
            LowerExecError::UnsupportedReduction => {
                write!(f, "reduction structure has no streaming reducer assignment")
            }
            LowerExecError::UndrivenTarget { index } => {
                write!(f, "target variable `{index}` does not appear on the right-hand side")
            }
            LowerExecError::ScalarAccess { tensor } => {
                write!(f, "scalar access `{tensor}` is not executable yet")
            }
        }
    }
}

impl std::error::Error for LowerExecError {}

/// An executable graph plus the storage format each operand must be bound
/// with (levels ordered by the dataflow's iteration order).
#[derive(Debug, Clone)]
pub struct ExecutableKernel {
    /// The executable SAM graph.
    pub graph: SamGraph,
    /// Per-operand storage formats, in access order.
    pub formats: Vec<(String, TensorFormat)>,
}

/// Checks the expression is a pure product or pure sum of accesses.
fn check_expression(expr: &Expr) -> Result<(), LowerExecError> {
    fn walk(expr: &Expr) -> Result<(), LowerExecError> {
        match expr {
            Expr::Access { tensor, indices } => {
                if indices.is_empty() {
                    return Err(LowerExecError::ScalarAccess { tensor: tensor.clone() });
                }
                Ok(())
            }
            Expr::Literal(_) => Err(LowerExecError::Literal),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                walk(a)?;
                walk(b)
            }
            Expr::Reduce { body, .. } => walk(body),
        }
    }
    walk(expr)?;
    if expr.has_additive_op() && expr.has_multiplicative_op() {
        return Err(LowerExecError::MixedExpression);
    }
    Ok(())
}

/// Lowers concrete index notation to an executable SAM graph.
///
/// ```
/// use custard::{lower_exec, parse, ConcreteIndexNotation, Formats, Schedule};
/// let a = parse("x(i) = B(i,j) * c(j)").unwrap();
/// let cin = ConcreteIndexNotation::new(a, &Schedule::new(), Formats::new());
/// let kernel = lower_exec(&cin).unwrap();
/// assert_eq!(kernel.formats.len(), 2);
/// assert!(kernel.graph.edges().iter().all(|e| e.src_port.is_some()));
/// ```
///
/// # Errors
///
/// Returns a [`LowerExecError`] when the expression falls outside the
/// executable fragment; see the module docs.
pub fn lower_exec(cin: &ConcreteIndexNotation) -> Result<ExecutableKernel, LowerExecError> {
    let assignment = &cin.assignment;
    let rhs = &assignment.rhs;
    check_expression(rhs)?;

    let accesses = rhs.accesses();
    {
        let mut seen = BTreeSet::new();
        for (name, _) in &accesses {
            if !seen.insert(*name) {
                return Err(LowerExecError::DuplicateAccess { tensor: name.to_string() });
            }
        }
    }
    let reduction_vars: Vec<IndexVar> = assignment.reduction_vars();
    let additive = rhs.has_additive_op();

    // Derive each operand's storage format: levels follow the loop order's
    // projection onto the access's index variables; per-mode level formats
    // come from the user's format declarations, defaulting to compressed.
    let mut formats: Vec<(String, TensorFormat)> = Vec::new();
    let mut storage_vars: Vec<Vec<IndexVar>> = Vec::new();
    for (name, indices) in &accesses {
        let vars: Vec<IndexVar> = cin.loop_order.iter().copied().filter(|v| indices.contains(v)).collect();
        let mode_order: Vec<usize> =
            vars.iter().map(|v| indices.iter().position(|iv| iv == v).expect("var from access")).collect();
        let levels: Vec<LevelFormat> = mode_order
            .iter()
            .map(|&m| {
                cin.formats
                    .get(name)
                    .and_then(|f| f.mode_order().iter().position(|&fm| fm == m).map(|l| f.levels()[l]))
                    .unwrap_or(LevelFormat::Compressed)
            })
            .collect();
        formats.push((name.to_string(), TensorFormat::with_mode_order(levels, mode_order)));
        storage_vars.push(vars);
    }

    let mut g = GraphBuilder::new(assignment.to_string());
    let mut cur_ref: Vec<Port> = accesses.iter().map(|(name, _)| g.root(name)).collect();
    let mut scan_depth = vec![0usize; accesses.len()];
    let mut var_crd: BTreeMap<IndexVar, Port> = BTreeMap::new();

    // Phase 1: iteration and merging, one loop level at a time.
    for &var in &cin.loop_order {
        let mut producers: Vec<(usize, Port)> = Vec::new();
        for (ordinal, (name, _)) in accesses.iter().enumerate() {
            if !storage_vars[ordinal].contains(&var) {
                continue;
            }
            let fmt = &formats[ordinal].1;
            let compressed = !matches!(fmt.levels()[scan_depth[ordinal]], LevelFormat::Dense);
            let (crd, rf) = g.scan(name, var, compressed, cur_ref[ordinal]);
            scan_depth[ordinal] += 1;
            cur_ref[ordinal] = rf;
            producers.push((ordinal, crd));
        }
        let merged_crd = match producers.len() {
            0 => continue,
            1 => producers[0].1,
            2 => {
                let crds = [producers[0].1, producers[1].1];
                let refs = [cur_ref[producers[0].0], cur_ref[producers[1].0]];
                let (crd, out_refs) =
                    if additive { g.union(var, crds, refs) } else { g.intersect(var, crds, refs) };
                cur_ref[producers[0].0] = out_refs[0];
                cur_ref[producers[1].0] = out_refs[1];
                crd
            }
            _ => return Err(LowerExecError::NAryMerge { index: var }),
        };
        // Broadcast operands that skip this variable but are consumed once
        // per coordinate of it.
        for (ordinal, (name, _)) in accesses.iter().enumerate() {
            if storage_vars[ordinal].contains(&var) {
                continue;
            }
            let needed = assignment.target_indices.contains(&var)
                || (reduction_vars.contains(&var) && access_under_reduction(rhs, ordinal, var));
            if needed {
                cur_ref[ordinal] = g.repeat(name, var, merged_crd, cur_ref[ordinal]);
            }
        }
        var_crd.insert(var, merged_crd);
    }

    // Phase 2: value loads and the compute tree. ALUs follow the
    // expression tree shape so non-left-deep expressions (e.g.
    // `b - (c - d)`) associate correctly; accesses are visited in the same
    // left-to-right order as `Expr::accesses`.
    let arrays: Vec<Port> =
        accesses.iter().enumerate().map(|(o, (name, _))| g.array(name, cur_ref[o])).collect();
    fn build_compute(g: &mut GraphBuilder, expr: &Expr, arrays: &[Port], next: &mut usize) -> Port {
        match expr {
            Expr::Access { .. } => {
                let port = arrays[*next];
                *next += 1;
                port
            }
            Expr::Literal(_) => unreachable!("rejected by check_expression"),
            Expr::Add(a, b) => {
                let lhs = build_compute(g, a, arrays, next);
                let rhs = build_compute(g, b, arrays, next);
                g.alu("add", lhs, rhs)
            }
            Expr::Sub(a, b) => {
                let lhs = build_compute(g, a, arrays, next);
                let rhs = build_compute(g, b, arrays, next);
                g.alu("sub", lhs, rhs)
            }
            Expr::Mul(a, b) => {
                let lhs = build_compute(g, a, arrays, next);
                let rhs = build_compute(g, b, arrays, next);
                g.alu("mul", lhs, rhs)
            }
            Expr::Reduce { body, .. } => build_compute(g, body, arrays, next),
        }
    }
    let mut next = 0;
    let mut tail = build_compute(&mut g, rhs, &arrays, &mut next);
    debug_assert_eq!(next, arrays.len(), "every access feeds the compute tree exactly once");

    // Phase 3: reduction. Reduction variables that form the innermost loop
    // suffix reduce with chained scalar reducers; a single reduction
    // variable with one or two target variables below it needs a vector or
    // matrix accumulator (Definition 3.7).
    if !reduction_vars.is_empty() {
        let positions: Vec<usize> = reduction_vars
            .iter()
            .map(|v| cin.loop_order.iter().position(|lv| lv == v).ok_or(LowerExecError::UnsupportedReduction))
            .collect::<Result<_, _>>()?;
        let innermost_suffix = positions.iter().all(|&p| p >= cin.loop_order.len() - reduction_vars.len());
        if innermost_suffix {
            for _ in &reduction_vars {
                tail = g.reduce_scalar(tail);
            }
        } else if reduction_vars.len() == 1 {
            let p = positions[0];
            let below: Vec<IndexVar> = cin.loop_order[p + 1..].to_vec();
            if !below.iter().all(|v| assignment.target_indices.contains(v)) {
                return Err(LowerExecError::UnsupportedReduction);
            }
            match below.len() {
                1 => {
                    let crd = var_crd[&below[0]];
                    let (out_crd, out_val) = g.reduce_vector(crd, tail);
                    var_crd.insert(below[0], out_crd);
                    tail = out_val;
                }
                2 => {
                    let crds = [var_crd[&below[0]], var_crd[&below[1]]];
                    let (out_crds, out_val) = g.reduce_matrix(crds, tail);
                    var_crd.insert(below[0], out_crds[0]);
                    var_crd.insert(below[1], out_crds[1]);
                    tail = out_val;
                }
                _ => return Err(LowerExecError::UnsupportedReduction),
            }
        } else {
            return Err(LowerExecError::UnsupportedReduction);
        }
    }

    // Phase 4: output construction.
    for &var in &assignment.target_indices {
        let crd = var_crd.get(&var).ok_or(LowerExecError::UndrivenTarget { index: var })?;
        g.write_level(&assignment.target, var, *crd);
    }
    g.write_vals(&assignment.target, tail);

    Ok(ExecutableKernel { graph: g.finish(), formats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cin::{Formats, Schedule};
    use crate::parser::parse;

    fn lower_text(text: &str, order: Option<&str>) -> Result<ExecutableKernel, LowerExecError> {
        let a = parse(text).unwrap();
        let schedule = match order {
            Some(o) => Schedule::new().reorder(o),
            None => Schedule::new(),
        };
        lower_exec(&ConcreteIndexNotation::new(a, &schedule, Formats::new()))
    }

    #[test]
    fn spmv_lowers_with_ported_edges() {
        let kernel = lower_text("x(i) = B(i,j) * c(j)", None).unwrap();
        assert!(kernel.graph.edges().iter().all(|e| e.src_port.is_some() && e.dst_port.is_some()));
        let c = kernel.graph.primitive_counts();
        assert_eq!(c.level_scan, 3);
        assert_eq!(c.intersect, 1);
        assert_eq!(c.repeat, 1);
        assert_eq!(c.reduce, 1);
        assert_eq!(c.level_write, 2);
    }

    #[test]
    fn spmm_orders_pick_matching_reducers() {
        use sam_core::graph::NodeKind;
        let inner = lower_text("X(i,j) = B(i,k) * C(k,j)", Some("ijk")).unwrap();
        assert!(inner.graph.has_kind(|n| matches!(n, NodeKind::Reducer { order: 0 })));
        let gustavson = lower_text("X(i,j) = B(i,k) * C(k,j)", Some("ikj")).unwrap();
        assert!(gustavson.graph.has_kind(|n| matches!(n, NodeKind::Reducer { order: 1 })));
        let outer = lower_text("X(i,j) = B(i,k) * C(k,j)", Some("kij")).unwrap();
        assert!(outer.graph.has_kind(|n| matches!(n, NodeKind::Reducer { order: 2 })));
    }

    #[test]
    fn derived_formats_follow_loop_order() {
        let kernel = lower_text("X(i,j) = B(i,k) * C(k,j)", Some("ijk")).unwrap();
        let c_fmt = &kernel.formats.iter().find(|(n, _)| n == "C").unwrap().1;
        // Inner product iterates C by columns: storage order [j, k].
        assert_eq!(c_fmt.mode_order(), &[1, 0]);
    }

    #[test]
    fn additions_lower_to_unions() {
        use sam_core::graph::NodeKind;
        let kernel = lower_text("X(i,j) = B(i,j) + C(i,j)", None).unwrap();
        assert!(kernel.graph.has_kind(|n| matches!(n, NodeKind::Unioner { .. })));
        assert!(!kernel.graph.has_kind(|n| matches!(n, NodeKind::Intersecter { .. })));
    }

    #[test]
    fn unsupported_shapes_report_errors() {
        assert_eq!(
            lower_text("x(i) = b(i) - C(i,j) * d(j)", None).unwrap_err(),
            LowerExecError::MixedExpression
        );
        assert_eq!(
            lower_text("X(i,j) = B(i,j) + C(i,j) + D(i,j)", None).unwrap_err(),
            LowerExecError::NAryMerge { index: 'i' }
        );
        assert_eq!(
            lower_text("x(i) = B(i,j) * B(i,j)", None).unwrap_err(),
            LowerExecError::DuplicateAccess { tensor: "B".into() }
        );
    }

    #[test]
    fn mttkrp_uses_chained_scalar_reducers() {
        let kernel = lower_text("X(i,j) = B(i,k,l) * C(j,k) * D(j,l)", None).unwrap();
        let counts = kernel.graph.primitive_counts();
        assert_eq!(counts.reduce, 2);
        assert_eq!(counts.intersect, 3);
    }
}
