//! The Table 2 ablation: how many expressions become inexpressible when a
//! SAM primitive is removed.
//!
//! The paper analyzes the corpus of algorithms submitted to the TACO website.
//! That corpus is not public, so this module builds a synthetic corpus (see
//! DESIGN.md, substitutions): every Table 1 expression plus an enumerated
//! family of small tensor-algebra expressions, each instantiated with every
//! combination of dense/compressed operand formats, and weighted by a
//! deterministic popularity factor to play the role of repeated website
//! submissions. The conclusion the table supports — that removing any
//! primitive loses a substantial part of the domain, with scanners,
//! multipliers and reducers losing the most — is preserved.

use crate::cin::{ConcreteIndexNotation, Formats, Schedule};
use crate::lower::lower;
use sam_core::graph::SamGraph;
use sam_tensor::expr::{table1, Assignment, Expr};
use sam_tensor::TensorFormat;
use serde::{Deserialize, Serialize};

/// One corpus entry: an expression with a specific operand format assignment.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Descriptive name.
    pub name: String,
    /// The statement.
    pub assignment: Assignment,
    /// Whether each operand (in access order) is stored compressed.
    pub compressed_operands: Vec<bool>,
    /// Whether the result is stored compressed.
    pub compressed_output: bool,
    /// Synthetic submission weight (plays the role of repeated website
    /// submissions in the paper's "All" column).
    pub weight: u64,
    /// The lowered SAM graph.
    pub graph: SamGraph,
}

/// The synthetic expression corpus used by [`ablation_study`].
#[derive(Debug, Clone, Default)]
pub struct ExpressionCorpus {
    entries: Vec<CorpusEntry>,
}

impl ExpressionCorpus {
    /// Builds the corpus: Table 1 expressions plus a generated family of
    /// element-wise and contraction expressions over 1–3 operands of order
    /// 1–3, each across all dense/compressed operand format combinations.
    pub fn generate() -> Self {
        let mut expressions: Vec<(String, Assignment)> =
            table1::all().into_iter().map(|(n, a)| (n.to_string(), a)).collect();
        // Element-wise families.
        expressions.push(("VecMul".into(), table1::vec_elem_mul()));
        expressions.push(("VecAdd".into(), table1::vec_elem_add()));
        expressions.push((
            "VecScale".into(),
            Assignment::new("x", "i", Expr::access("alpha", "").mul(Expr::access("b", "i"))),
        ));
        expressions.push((
            "MatElemMul".into(),
            Assignment::new("X", "ij", Expr::access("B", "ij").mul(Expr::access("C", "ij"))),
        ));
        expressions.push((
            "MatVecAdd".into(),
            Assignment::new(
                "x",
                "i",
                Expr::access("B", "ij").mul(Expr::access("c", "j")).reduce("j").add(Expr::access("d", "i")),
            ),
        ));
        expressions.push((
            "TensorElemAdd3".into(),
            Assignment::new(
                "X",
                "ijk",
                Expr::access("B", "ijk").add(Expr::access("C", "ijk")).add(Expr::access("D", "ijk")),
            ),
        ));
        expressions.push((
            "TensorContract".into(),
            Assignment::new("X", "ij", Expr::access("B", "ikl").mul(Expr::access("C", "klj")).reduce("kl")),
        ));
        expressions.push(("RowSum".into(), Assignment::new("x", "i", Expr::access("B", "ij").reduce("j"))));
        expressions.push(("VecCopy".into(), Assignment::new("x", "i", Expr::access("b", "i"))));

        let mut entries = Vec::new();
        for (name, assignment) in expressions {
            let accesses: Vec<(String, usize)> =
                assignment.rhs.accesses().iter().map(|(n, idx)| (n.to_string(), idx.len())).collect();
            let operand_count = accesses.len();
            // Every combination of dense/compressed operands and output.
            for mask in 0..(1u32 << operand_count) {
                for &compressed_output in &[true, false] {
                    let compressed_operands: Vec<bool> =
                        (0..operand_count).map(|b| (mask >> b) & 1 == 1).collect();
                    let mut formats = Formats::new();
                    for ((tensor, order), &compressed) in accesses.iter().zip(&compressed_operands) {
                        if *order > 0 {
                            let fmt = if compressed {
                                TensorFormat::csf(*order)
                            } else {
                                TensorFormat::dense(*order)
                            };
                            formats = formats.set(tensor, fmt);
                        }
                    }
                    let cin = ConcreteIndexNotation::new(assignment.clone(), &Schedule::new(), formats);
                    let graph = lower(&cin);
                    // Deterministic popularity weight standing in for repeat
                    // submissions on the TACO website.
                    let weight =
                        1 + (name.len() as u64 * 7 + mask as u64 * 3 + u64::from(compressed_output)) % 19;
                    entries.push(CorpusEntry {
                        name: format!("{name}/m{mask}/{}", if compressed_output { "comp" } else { "dense" }),
                        assignment: assignment.clone(),
                        compressed_operands,
                        compressed_output,
                        weight,
                        graph,
                    });
                }
            }
        }
        ExpressionCorpus { entries }
    }

    /// The corpus entries.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of distinct algorithm entries.
    pub fn unique_count(&self) -> usize {
        self.entries.len()
    }

    /// Weighted entry count (the "All" column).
    pub fn total_count(&self) -> u64 {
        self.entries.iter().map(|e| e.weight).sum()
    }
}

/// One row of the Table 2 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Description of the removed primitive.
    pub removed: String,
    /// Distinct expressions lost.
    pub unique_lost: usize,
    /// Weighted expressions lost.
    pub all_lost: u64,
    /// Percentage of distinct expressions lost.
    pub unique_percent: f64,
    /// Percentage of weighted expressions lost.
    pub all_percent: f64,
}

fn row(corpus: &ExpressionCorpus, removed: &str, lost: impl Fn(&CorpusEntry) -> bool) -> AblationRow {
    let unique_lost = corpus.entries().iter().filter(|e| lost(e)).count();
    let all_lost: u64 = corpus.entries().iter().filter(|e| lost(e)).map(|e| e.weight).sum();
    AblationRow {
        removed: removed.to_string(),
        unique_lost,
        all_lost,
        unique_percent: 100.0 * unique_lost as f64 / corpus.unique_count() as f64,
        all_percent: 100.0 * all_lost as f64 / corpus.total_count() as f64,
    }
}

/// Runs the Table 2 ablation over a corpus.
pub fn ablation_study(corpus: &ExpressionCorpus) -> Vec<AblationRow> {
    use sam_core::graph::NodeKind;
    vec![
        row(corpus, "Comp. Level Scanner", |e| e.compressed_operands.iter().any(|c| *c)),
        row(corpus, "Comp. + Uncomp. Level Scanners", |e| !e.assignment.rhs.accesses().is_empty()),
        row(corpus, "Repeater", |e| e.graph.has_kind(|n| matches!(n, NodeKind::Repeater { .. }))),
        row(corpus, "Unioner", |e| e.graph.has_kind(|n| matches!(n, NodeKind::Unioner { .. }))),
        row(corpus, "Intersecter keep Locator", |e| {
            e.graph.has_kind(|n| matches!(n, NodeKind::Intersecter { .. }))
                && e.compressed_operands.iter().all(|c| *c)
        }),
        row(corpus, "Intersecter w/ Locator Removed", |e| {
            e.graph.has_kind(|n| matches!(n, NodeKind::Intersecter { .. }))
        }),
        row(corpus, "Adder", |e| {
            e.graph.has_kind(|n| matches!(n, NodeKind::Alu { op } if op == "add" || op == "sub"))
        }),
        row(corpus, "Multiplier", |e| e.graph.has_kind(|n| matches!(n, NodeKind::Alu { op } if op == "mul"))),
        row(corpus, "Reducer", |e| e.graph.has_kind(|n| matches!(n, NodeKind::Reducer { .. }))),
        row(corpus, "Coordinate Dropper", |e| {
            e.graph.has_kind(|n| matches!(n, NodeKind::CoordDropper { .. })) && e.compressed_output
        }),
        row(corpus, "Comp. Level Writer", |e| e.compressed_output && !e.assignment.target_indices.is_empty()),
        row(corpus, "Comp. + Uncomp. Level Writers", |e| !e.assignment.target_indices.is_empty()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_substantial_and_deterministic() {
        let a = ExpressionCorpus::generate();
        let b = ExpressionCorpus::generate();
        assert!(a.unique_count() > 150, "corpus has {} entries", a.unique_count());
        assert_eq!(a.unique_count(), b.unique_count());
        assert_eq!(a.total_count(), b.total_count());
    }

    #[test]
    fn ablation_reproduces_table2_ordering() {
        let corpus = ExpressionCorpus::generate();
        let rows = ablation_study(&corpus);
        assert_eq!(rows.len(), 12);
        let get = |name: &str| rows.iter().find(|r| r.removed == name).expect("row").unique_percent;
        // Removing both scanner types or both writer types loses essentially
        // everything.
        assert!(get("Comp. + Uncomp. Level Scanners") > 95.0);
        assert!(get("Comp. + Uncomp. Level Writers") > 90.0);
        // The multiplier and reducer are more critical than the unioner and
        // the coordinate dropper, as in the paper.
        assert!(get("Multiplier") > get("Unioner"));
        assert!(get("Reducer") > get("Coordinate Dropper"));
        // Losing the intersecter entirely hurts more than losing it while a
        // locator remains available.
        assert!(get("Intersecter w/ Locator Removed") >= get("Intersecter keep Locator"));
        // Every row loses something.
        assert!(rows.iter().all(|r| r.unique_lost > 0));
    }
}
