//! # custard
//!
//! The Custard compiler (paper Section 5): from tensor index notation, a
//! format language and a scheduling language down to SAM dataflow graphs.
//!
//! The pipeline mirrors the paper's Figure 10:
//!
//! 1. [`parse`] turns textual tensor index notation
//!    (`"X(i,j) = B(i,k) * C(k,j)"`) into the shared
//!    [`Assignment`](sam_tensor::expr::Assignment) AST,
//! 2. [`Schedule`] (the `reorder` directive) and [`Formats`] fix the
//!    dataflow order and per-tensor level formats, producing
//!    [`ConcreteIndexNotation`],
//! 3. [`lower()`] builds the SAM graph: tensor paths, level scanners,
//!    repeaters, intersecters/unioners, the compute tree (ALUs and reducers)
//!    and the output construction (coordinate droppers and level writers).
//!
//! The resulting [`SamGraph`](sam_core::SamGraph) is used to report the
//! Table 1 primitive composition, to run the Table 2 ablation, and to emit
//! Graphviz DOT.

pub mod ablation;
pub mod cin;
pub mod exec_lower;
pub mod lower;
pub mod parser;

pub use ablation::{ablation_study, AblationRow, ExpressionCorpus};
pub use cin::{ConcreteIndexNotation, Formats, Schedule};
pub use exec_lower::{lower_exec, lower_exec_with, ExecutableKernel, LowerExecError, LowerOptions};
pub use lower::lower;
pub use parser::{parse, ParseError};
