//! The format language, scheduling language and concrete index notation.

use sam_tensor::expr::{Assignment, IndexVar};
use sam_tensor::TensorFormat;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-tensor storage formats (the paper's format language).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Formats {
    formats: BTreeMap<String, TensorFormat>,
}

impl Formats {
    /// An empty format environment: tensors default to fully compressed
    /// storage in the dataflow order.
    pub fn new() -> Self {
        Formats::default()
    }

    /// Sets the format of one tensor.
    pub fn set(mut self, tensor: &str, format: TensorFormat) -> Self {
        self.formats.insert(tensor.to_string(), format);
        self
    }

    /// The format bound to a tensor, if any.
    pub fn get(&self, tensor: &str) -> Option<&TensorFormat> {
        self.formats.get(tensor)
    }
}

/// The scheduling language: currently the `reorder` directive fixing the
/// dataflow (index variable) order, as used throughout the paper's
/// evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    reorder: Option<Vec<IndexVar>>,
}

impl Schedule {
    /// The default schedule (alphabetical/declaration order).
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Fixes the iteration order, e.g. `"ikj"` for Gustavson's SpM*SpM.
    pub fn reorder(mut self, order: &str) -> Self {
        self.reorder = Some(order.chars().collect());
        self
    }

    /// The requested order, if any.
    pub fn order(&self) -> Option<&[IndexVar]> {
        self.reorder.as_deref()
    }
}

/// Concrete index notation: the assignment plus a fully determined loop
/// (dataflow) order — the abstract loop nest of paper Figure 10.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcreteIndexNotation {
    /// The tensor index notation statement.
    pub assignment: Assignment,
    /// The forall loop order, outermost first.
    pub loop_order: Vec<IndexVar>,
    /// Per-tensor formats.
    pub formats: Formats,
}

impl ConcreteIndexNotation {
    /// Builds concrete index notation from an assignment, a schedule and
    /// formats. Without a `reorder` directive the loop order is the target
    /// indices followed by the remaining variables in alphabetical order.
    ///
    /// # Panics
    ///
    /// Panics if a `reorder` directive does not cover exactly the statement's
    /// index variables.
    pub fn new(assignment: Assignment, schedule: &Schedule, formats: Formats) -> Self {
        let default_order = assignment.all_index_vars();
        let loop_order = match schedule.order() {
            Some(order) => {
                let mut sorted_a: Vec<_> = order.to_vec();
                sorted_a.sort_unstable();
                let mut sorted_b = default_order.clone();
                sorted_b.sort_unstable();
                assert_eq!(sorted_a, sorted_b, "reorder must mention every index variable exactly once");
                order.to_vec()
            }
            None => default_order,
        };
        ConcreteIndexNotation { assignment, loop_order, formats }
    }

    /// The loop order as a string (e.g. `"ikj"`).
    pub fn order_string(&self) -> String {
        self.loop_order.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_tensor::expr::table1;

    #[test]
    fn default_order_is_target_then_alphabetical() {
        let cin = ConcreteIndexNotation::new(table1::spmm(), &Schedule::new(), Formats::new());
        assert_eq!(cin.order_string(), "ijk");
    }

    #[test]
    fn reorder_changes_loop_order() {
        let cin = ConcreteIndexNotation::new(table1::spmm(), &Schedule::new().reorder("ikj"), Formats::new());
        assert_eq!(cin.order_string(), "ikj");
    }

    #[test]
    #[should_panic(expected = "every index variable")]
    fn reorder_must_be_complete() {
        let _ = ConcreteIndexNotation::new(table1::spmm(), &Schedule::new().reorder("ik"), Formats::new());
    }

    #[test]
    fn formats_round_trip() {
        let fmts = Formats::new().set("B", TensorFormat::dcsr()).set("c", TensorFormat::dense_vec());
        assert_eq!(fmts.get("B"), Some(&TensorFormat::dcsr()));
        assert!(fmts.get("Z").is_none());
    }
}
