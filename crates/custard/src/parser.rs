//! Parser for textual tensor index notation.
//!
//! The accepted grammar mirrors the TACO/Custard input language:
//!
//! ```text
//! statement := tensor '(' indices? ')' '=' expr
//! expr      := term (('+' | '-') term)*
//! term      := factor ('*' factor)*
//! factor    := number | tensor '(' indices? ')' | '(' expr ')'
//! ```
//!
//! Reduction variables (those not appearing on the left-hand side) are
//! wrapped in an explicit `Reduce` node at the top of the right-hand side,
//! matching Einsum semantics; additive terms that do not mention a reduction
//! variable stay outside the reduction (e.g. the residual expression).

use sam_tensor::expr::{Assignment, Expr, IndexVar};
use std::fmt;

/// An error produced while parsing tensor index notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input: input.as_bytes(), pos: 0 }
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: message.into(), position: self.pos })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.eat(byte) {
            Ok(())
        } else {
            self.error(format!("expected `{}`", byte as char))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_alphanumeric() || self.input[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.error("expected an identifier");
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos]).expect("ascii").to_string())
    }

    fn access(&mut self) -> Result<(String, Vec<IndexVar>), ParseError> {
        let name = self.ident()?;
        let mut indices = Vec::new();
        if self.eat(b'(') && !self.eat(b')') {
            loop {
                let idx = self.ident()?;
                if idx.len() != 1 {
                    return self.error(format!("index variables must be single letters, got `{idx}`"));
                }
                indices.push(idx.chars().next().expect("nonempty"));
                if self.eat(b')') {
                    break;
                }
                self.expect(b',')?;
            }
        }
        Ok((name, indices))
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.expect(b'(')?;
                let e = self.expr()?;
                self.expect(b')')?;
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self.pos < self.input.len()
                    && (self.input[self.pos].is_ascii_digit() || self.input[self.pos] == b'.')
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
                match text.parse::<f64>() {
                    Ok(v) => Ok(Expr::Literal(v)),
                    Err(_) => self.error(format!("bad numeric literal `{text}`")),
                }
            }
            Some(_) => {
                let (name, indices) = self.access()?;
                Ok(Expr::Access { tensor: name, indices })
            }
            None => self.error("unexpected end of input"),
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.factor()?;
        while self.peek() == Some(b'*') {
            self.expect(b'*')?;
            let rhs = self.factor()?;
            e = e.mul(rhs);
        }
        Ok(e)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.expect(b'+')?;
                    let rhs = self.term()?;
                    e = e.add(rhs);
                }
                Some(b'-') => {
                    self.expect(b'-')?;
                    let rhs = self.term()?;
                    e = e.sub(rhs);
                }
                _ => break,
            }
        }
        Ok(e)
    }
}

/// Wraps every maximal sub-expression that mentions reduction variables in a
/// `Reduce` node. Terms of a sum that do not mention a reduction variable
/// stay outside (the residual/MatTransMul pattern).
fn apply_reductions(expr: Expr, reduction_vars: &[IndexVar]) -> Expr {
    if reduction_vars.is_empty() {
        return expr;
    }
    match expr {
        Expr::Add(a, b) => {
            let a = apply_reductions(*a, reduction_vars);
            let b = apply_reductions(*b, reduction_vars);
            a.add(b)
        }
        Expr::Sub(a, b) => {
            let a = apply_reductions(*a, reduction_vars);
            let b = apply_reductions(*b, reduction_vars);
            a.sub(b)
        }
        other => {
            let used: Vec<IndexVar> =
                reduction_vars.iter().copied().filter(|v| other.index_vars().contains(v)).collect();
            if used.is_empty() {
                other
            } else {
                Expr::Reduce { vars: used, body: Box::new(other) }
            }
        }
    }
}

/// Parses a tensor index notation statement such as
/// `"X(i,j) = B(i,k) * C(k,j)"`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token.
///
/// ```
/// let a = custard::parse("x(i) = B(i,j) * c(j)").unwrap();
/// assert_eq!(a.target, "x");
/// assert_eq!(a.reduction_vars(), vec!['j']);
/// ```
pub fn parse(text: &str) -> Result<Assignment, ParseError> {
    let mut p = Parser::new(text);
    let (target, target_indices) = p.access()?;
    p.expect(b'=')?;
    let rhs = p.expr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return p.error("trailing input after expression");
    }
    let target_str: String = target_indices.iter().collect();
    let assignment = Assignment::new(&target, &target_str, rhs);
    let reduction_vars = assignment.reduction_vars();
    let rhs = apply_reductions(assignment.rhs, &reduction_vars);
    Ok(Assignment { target: assignment.target, target_indices: assignment.target_indices, rhs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_tensor::expr::table1;

    #[test]
    fn parses_spmm() {
        let a = parse("X(i,j) = B(i,k) * C(k,j)").unwrap();
        assert_eq!(a, table1::spmm());
    }

    #[test]
    fn parses_residual_with_partial_reduction() {
        let a = parse("x(i) = b(i) - C(i,j) * d(j)").unwrap();
        assert_eq!(a, table1::residual());
    }

    #[test]
    fn parses_scalar_output_and_additions() {
        let a = parse("chi() = B(i,j,k) * C(i,j,k)").unwrap();
        assert_eq!(a, table1::inner_prod());
        let m = parse("X(i,j) = B(i,j) + C(i,j)").unwrap();
        assert_eq!(m, table1::mm_add());
    }

    #[test]
    fn parses_parentheses_and_literals() {
        let a = parse("x(i) = 2 * (b(i) + c(i))").unwrap();
        assert!(matches!(a.rhs, Expr::Mul(..)));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("x(i) =").is_err());
        assert!(parse("x(i) = B(i,").is_err());
        assert!(parse("x(ij) = B(ij)").is_err());
        assert!(parse("x(i) = b(i) extra").is_err());
        let err = parse("x(i) = $").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn all_table1_expressions_roundtrip() {
        for (name, text) in [
            ("SpMV", "x(i) = B(i,j) * c(j)"),
            ("SpM*SpM", "X(i,j) = B(i,k) * C(k,j)"),
            ("SDDMM", "X(i,j) = B(i,j) * C(i,k) * D(j,k)"),
            ("TTV", "X(i,j) = B(i,j,k) * c(k)"),
            ("TTM", "X(i,j,k) = B(i,j,l) * C(k,l)"),
            ("MTTKRP", "X(i,j) = B(i,k,l) * C(j,k) * D(j,l)"),
            ("Plus3", "X(i,j) = B(i,j) + C(i,j) + D(i,j)"),
        ] {
            let parsed = parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!parsed.to_string().is_empty());
        }
    }
}
