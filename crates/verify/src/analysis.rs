//! The shared dataflow framework: port resolution, topology, and abstract
//! stream-type inference over a [`SamGraph`].
//!
//! One [`Analysis`] run feeds all three verifier passes (protocol
//! checking, lints, deadlock analysis) *and* the execution planner's rank
//! validation, which consults [`Analysis::ref_annotation`] instead of
//! re-tracing reference streams itself.
//!
//! The framework mirrors the planner's resolution semantics exactly
//! (`sam_exec::Plan::build` phases 2–5) but never stops at the first
//! problem: every finding becomes a [`Diagnostic`] and inference continues
//! on the unaffected parts of the graph. Streams downstream of a reported
//! defect are marked [`StreamType::Tainted`] so one wiring bug does not
//! cascade into a page of secondary diagnostics.

use crate::diag::{Diagnostic, Report, Rule};
use sam_core::graph::{Edge, NodeId, NodeKind, PortKind, SamGraph, StreamKind};
use sam_tensor::Tensor;
use std::collections::{HashMap, HashSet};

/// The tensors a graph is (or would be) executed over, by name.
///
/// A thin borrow map so the verifier can check binding-level rules (rank,
/// level formats, scalar-ness) without depending on the executor's
/// `Inputs`. Build one with [`Bindings::bind`] or collect from any
/// `(&str, &Tensor)` iterator — `sam_exec::Inputs::iter` yields exactly
/// that shape.
#[derive(Debug, Clone, Default)]
pub struct Bindings<'a> {
    map: HashMap<&'a str, &'a Tensor>,
}

impl<'a> Bindings<'a> {
    /// An empty binding set.
    pub fn new() -> Self {
        Bindings { map: HashMap::new() }
    }

    /// Adds (or replaces) a named tensor.
    pub fn bind(mut self, name: &'a str, tensor: &'a Tensor) -> Self {
        self.map.insert(name, tensor);
        self
    }

    /// Looks up a bound tensor.
    pub fn get(&self, name: &str) -> Option<&'a Tensor> {
        self.map.get(name).copied()
    }
}

impl<'a> FromIterator<(&'a str, &'a Tensor)> for Bindings<'a> {
    fn from_iter<T: IntoIterator<Item = (&'a str, &'a Tensor)>>(iter: T) -> Self {
        Bindings { map: iter.into_iter().collect() }
    }
}

/// The abstract type inferred for one producer port's stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamType {
    /// A coordinate stream, tagged with the index variable that generates
    /// it when one is known.
    Crd {
        /// The generating index variable (`None` for reducer outputs,
        /// whose coordinates are re-emitted rather than generated).
        index: Option<char>,
    },
    /// A reference stream into `tensor`, having descended `depth` storage
    /// levels from the root (depth equal to the tensor's rank references
    /// the values).
    Ref {
        /// The tensor the references point into.
        tensor: String,
        /// Storage levels consumed so far.
        depth: usize,
    },
    /// A value stream.
    Val,
    /// Legitimately untracked (e.g. a stream routed through a coordinate
    /// dropper's passthrough port) — consumers stay permissive, exactly
    /// like the planner.
    Unknown,
    /// Unknown because an upstream diagnostic already fired; consumers
    /// stay silent instead of re-reporting the same defect.
    Tainted,
}

/// A producer endpoint (output `port` of node `node`), in plain indices so
/// the type is independent of the executor crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The producing node.
    pub node: usize,
    /// The output-port index.
    pub port: usize,
}

/// One validated coordinate-skip feedback lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipLane {
    /// The intersecter emitting skip targets.
    pub intersecter: usize,
    /// Which operand (0 or 1) the lane serves.
    pub operand: usize,
    /// The level scanner receiving the targets.
    pub scanner: usize,
}

/// The result of one framework run: the resolved topology, the inferred
/// stream types, and every diagnostic found on the way.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All findings from the structural and typing passes.
    pub report: Report,
    pub(crate) node_inputs: Vec<Vec<Option<PortRef>>>,
    pub(crate) consumers: Vec<Vec<Vec<(usize, usize)>>>,
    /// Kahn order over the data edges; empty when the graph has a cycle.
    pub(crate) order: Vec<usize>,
    pub(crate) types: Vec<Vec<StreamType>>,
    pub(crate) skip_lanes: Vec<SkipLane>,
    pub(crate) acyclic: bool,
}

impl Analysis {
    /// Runs the framework over `graph`; `bindings` enables the
    /// binding-level rules (unknown tensors, rank, level formats,
    /// scalar-ness) on top of the purely structural ones.
    pub fn run(graph: &SamGraph, bindings: Option<&Bindings<'_>>) -> Analysis {
        let mut a = Analyzer::new(graph, bindings);
        a.structural();
        a.infer_types();
        Analysis {
            report: a.report,
            node_inputs: a.node_inputs,
            consumers: a.consumers,
            order: a.order,
            types: a.types,
            skip_lanes: a.skip_lanes,
            acyclic: a.acyclic,
        }
    }

    /// The inferred stream type of the given producer port, if the node
    /// and port exist.
    pub fn stream_type(&self, node: usize, port: usize) -> Option<&StreamType> {
        self.types.get(node).and_then(|p| p.get(port))
    }

    /// The `(tensor, depth)` annotation of a reference stream — the
    /// verifier-computed result the planner's rank validation delegates
    /// to. `None` for non-reference or untracked streams.
    pub fn ref_annotation(&self, node: usize, port: usize) -> Option<(&str, usize)> {
        match self.stream_type(node, port)? {
            StreamType::Ref { tensor, depth } => Some((tensor.as_str(), *depth)),
            _ => None,
        }
    }

    /// Whether the data edges form a DAG.
    pub fn acyclic(&self) -> bool {
        self.acyclic
    }

    /// The validated skip lanes.
    pub fn skip_lanes(&self) -> &[SkipLane] {
        &self.skip_lanes
    }

    /// The data consumers of each output port of `node` (skip lanes
    /// included on the intersecter's skip ports, mirroring the planner).
    pub fn consumers_of(&self, node: usize) -> &[Vec<(usize, usize)>] {
        &self.consumers[node]
    }

    /// The producer feeding each input port of `node` (`None` for unwired
    /// optional skip ports or ports whose edge failed to resolve).
    pub fn inputs_of(&self, node: usize) -> &[Option<PortRef>] {
        &self.node_inputs[node]
    }
}

/// Working state of one run.
struct Analyzer<'g, 'b> {
    graph: &'g SamGraph,
    bindings: Option<&'b Bindings<'b>>,
    report: Report,
    node_inputs: Vec<Vec<Option<PortRef>>>,
    consumers: Vec<Vec<Vec<(usize, usize)>>>,
    order: Vec<usize>,
    types: Vec<Vec<StreamType>>,
    skip_lanes: Vec<SkipLane>,
    acyclic: bool,
    /// Nodes with a dropped or mis-resolved incoming edge: exempt from the
    /// dangling-input check so one bad edge yields one diagnostic.
    poisoned: Vec<bool>,
    /// Tensor names already reported unknown (a missing binding is one
    /// defect however many nodes name the tensor).
    unknown_reported: HashSet<String>,
}

impl<'g, 'b> Analyzer<'g, 'b> {
    fn new(graph: &'g SamGraph, bindings: Option<&'b Bindings<'b>>) -> Self {
        let nodes = graph.nodes();
        Analyzer {
            graph,
            bindings,
            report: Report::default(),
            node_inputs: nodes.iter().map(|k| vec![None; k.input_ports().len()]).collect(),
            consumers: nodes.iter().map(|k| vec![Vec::new(); k.output_ports().len()]).collect(),
            order: Vec::new(),
            types: nodes.iter().map(|k| vec![StreamType::Unknown; k.output_ports().len()]).collect(),
            skip_lanes: Vec::new(),
            acyclic: true,
            poisoned: vec![false; graph.len()],
            unknown_reported: HashSet::new(),
        }
    }

    fn diag(&mut self, rule: Rule, node: usize, message: String) {
        let label = self.graph.node_label(NodeId(node));
        self.report.push(Diagnostic::new(rule, message).at(node, label));
    }

    fn diag_port(&mut self, rule: Rule, node: usize, port: usize, message: String) {
        let label = self.graph.node_label(NodeId(node));
        self.report.push(Diagnostic::new(rule, message).at(node, label).on_port(port));
    }

    fn label(&self, node: usize) -> String {
        self.graph.node_label(NodeId(node))
    }

    /// Phases 1–4 of the planner, diagnostically: support check, port
    /// resolution, cycle detection, fan-out, skip-lane validation.
    fn structural(&mut self) {
        let nodes = self.graph.nodes();

        // Support check: primitives the IR carries but no backend lowers.
        for (node, kind) in nodes.iter().enumerate() {
            let name = match kind {
                NodeKind::Parallelizer => Some("Parallelizer"),
                NodeKind::Serializer => Some("Serializer"),
                NodeKind::BitvectorConverter => Some("BitvectorConverter"),
                _ => None,
            };
            if let Some(name) = name {
                self.poisoned[node] = true;
                self.diag(
                    Rule::NotYetLowerable,
                    node,
                    format!(
                        "`{name}` is not yet lowerable: no execution backend implements it \
                         (see ROADMAP \"IR coverage\")"
                    ),
                );
            }
        }

        let data_edges: Vec<&Edge> =
            self.graph.edges().iter().filter(|e| e.kind != StreamKind::Skip).collect();
        let skip_edges: Vec<&Edge> =
            self.graph.edges().iter().filter(|e| e.kind == StreamKind::Skip).collect();

        // Source-port attribution, mirroring the planner's inference: an
        // explicit port must exist and carry the kind; unported edges bind
        // to the unique compatible port, or are dealt out in edge order
        // when several ports carry the kind.
        let mut src_ports: Vec<Option<usize>> = Vec::with_capacity(data_edges.len());
        let mut ambiguous_reported: HashSet<(usize, StreamKind)> = HashSet::new();
        let mut next_inferred: HashMap<(usize, usize), usize> = HashMap::new();
        for e in &data_edges {
            let outs = nodes[e.from.0].output_ports();
            let port = match e.src_port {
                Some(p) => {
                    if p >= outs.len() || !outs[p].accepts(e.kind) {
                        self.diag_port(
                            Rule::PortKindMismatch,
                            e.from.0,
                            p,
                            format!(
                                "edge `{}` names output port {p} of `{}`, which {}",
                                e.label,
                                self.label(e.from.0),
                                if p >= outs.len() {
                                    "does not exist".to_string()
                                } else {
                                    format!("cannot carry a {:?} stream", e.kind)
                                }
                            ),
                        );
                        None
                    } else {
                        Some(p)
                    }
                }
                None => {
                    let candidates: Vec<usize> =
                        (0..outs.len()).filter(|&p| outs[p].accepts(e.kind)).collect();
                    match candidates.len() {
                        0 => {
                            self.diag(
                                Rule::PortKindMismatch,
                                e.from.0,
                                format!(
                                    "edge `{}`: `{}` has no output port carrying a {:?} stream",
                                    e.label,
                                    self.label(e.from.0),
                                    e.kind
                                ),
                            );
                            None
                        }
                        1 => Some(candidates[0]),
                        _ => {
                            let unported = self
                                .graph
                                .edges()
                                .iter()
                                .filter(|o| o.from == e.from && o.kind == e.kind && o.src_port.is_none())
                                .count();
                            if unported > candidates.len() {
                                if ambiguous_reported.insert((e.from.0, e.kind)) {
                                    self.diag(
                                        Rule::AmbiguousPort,
                                        e.from.0,
                                        format!(
                                            "{unported} unported {:?} edges leave `{}`, which has only \
                                             {} such ports — wire them explicitly",
                                            e.kind,
                                            self.label(e.from.0),
                                            candidates.len()
                                        ),
                                    );
                                }
                                None
                            } else {
                                let key = (e.from.0, candidates[0]);
                                let idx = next_inferred.entry(key).or_insert(0);
                                let port = candidates[*idx % candidates.len()];
                                *idx += 1;
                                Some(port)
                            }
                        }
                    }
                }
            };
            if port.is_none() {
                self.poisoned[e.to.0] = true;
            }
            src_ports.push(port);
        }

        // Destination binding.
        for (idx, e) in data_edges.iter().enumerate() {
            let Some(src_port) = src_ports[idx] else { continue };
            let ins = nodes[e.to.0].input_ports();
            let slot = match e.dst_port {
                Some(p) => {
                    if p >= ins.len() || !ins[p].accepts(e.kind) {
                        self.diag_port(
                            Rule::PortKindMismatch,
                            e.to.0,
                            p,
                            format!(
                                "edge `{}` names input port {p} of `{}`, which {}",
                                e.label,
                                self.label(e.to.0),
                                if p >= ins.len() {
                                    "does not exist".to_string()
                                } else {
                                    format!("cannot accept a {:?} stream", e.kind)
                                }
                            ),
                        );
                        self.poisoned[e.to.0] = true;
                        continue;
                    }
                    if self.node_inputs[e.to.0][p].is_some() {
                        self.diag_port(
                            Rule::DuplicateInput,
                            e.to.0,
                            p,
                            format!(
                                "two edges claim input port {p} of `{}` (second: `{}`)",
                                self.label(e.to.0),
                                e.label
                            ),
                        );
                        self.poisoned[e.to.0] = true;
                        continue;
                    }
                    p
                }
                None => {
                    match (0..ins.len())
                        .find(|&p| ins[p].accepts(e.kind) && self.node_inputs[e.to.0][p].is_none())
                    {
                        Some(p) => p,
                        None => {
                            self.diag(
                                Rule::ExtraInput,
                                e.to.0,
                                format!(
                                    "edge `{}` fits no remaining input port of `{}`",
                                    e.label,
                                    self.label(e.to.0)
                                ),
                            );
                            self.poisoned[e.to.0] = true;
                            continue;
                        }
                    }
                }
            };
            self.node_inputs[e.to.0][slot] = Some(PortRef { node: e.from.0, port: src_port });
            self.consumers[e.from.0][src_port].push((e.to.0, slot));
        }

        // Dangling mandatory inputs (skip ports are optional; nodes with a
        // mis-resolved edge were already reported).
        for (i, node) in nodes.iter().enumerate() {
            if self.poisoned[i] {
                continue;
            }
            for (p, kind) in node.input_ports().iter().enumerate() {
                if self.node_inputs[i][p].is_none() && *kind != PortKind::Skip {
                    self.diag_port(
                        Rule::DanglingInput,
                        i,
                        p,
                        format!("input port {p} of `{}` has no incoming edge", self.label(i)),
                    );
                }
            }
        }

        // Kahn over the data edges; skip feedback lanes are the one legal
        // kind of cycle.
        let n = self.graph.len();
        let mut indegree = vec![0usize; n];
        for e in &data_edges {
            indegree[e.to.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for e in data_edges.iter().filter(|e| e.from.0 == u) {
                indegree[e.to.0] -= 1;
                if indegree[e.to.0] == 0 {
                    queue.push(e.to.0);
                }
            }
        }
        if queue.len() != n {
            let stuck: Vec<String> = (0..n).filter(|&i| indegree[i] > 0).map(|i| self.label(i)).collect();
            self.acyclic = false;
            self.report.push(Diagnostic::new(
                Rule::DataCycle,
                format!("the data edges form a cycle through: {}", stuck.join(", ")),
            ));
        } else {
            self.order = queue;
        }

        // Skip-lane validation (planner phase 4b, same reason strings).
        for e in &skip_edges {
            if let Err(reason) = self.check_skip_lane(e) {
                self.diag(Rule::IllegalSkipEdge, e.from.0, format!("skip edge `{}`: {reason}", e.label));
            }
        }
    }

    /// Validates one skip feedback lane against the Section 4.2 contract;
    /// on success records it in `skip_lanes` and `consumers`.
    fn check_skip_lane(&mut self, e: &Edge) -> Result<(), String> {
        let nodes = self.graph.nodes();
        if !matches!(nodes[e.from.0], NodeKind::Intersecter { .. }) {
            return Err("source must be an intersecter".into());
        }
        if !matches!(nodes[e.to.0], NodeKind::LevelScanner { .. }) {
            return Err("target must be a level scanner".into());
        }
        if e.dst_port.is_some_and(|p| p != 1) {
            return Err("target port must be the scanner's skip input (port 1)".into());
        }
        let scanner = e.to.0;
        let feeds = |slot: usize| self.node_inputs[e.from.0][slot].map(|p| (p.node, p.port));
        let operand = match e.src_port {
            Some(3) => 0,
            Some(4) => 1,
            Some(_) => return Err("source port must be a skip lane (port 3 or 4)".into()),
            None => match (feeds(0), feeds(1)) {
                (Some((s, 0)), _) if s == scanner => 0,
                (_, Some((s, 0))) if s == scanner => 1,
                _ => return Err("target scanner feeds neither coordinate operand".into()),
            },
        };
        if feeds(operand) != Some((scanner, 0)) {
            return Err("lane must target the scanner feeding that operand's coordinates".into());
        }
        if feeds(2 + operand) != Some((scanner, 1)) {
            return Err("the operand's reference stream must come from the same scanner".into());
        }
        if self.consumers[scanner][0].len() != 1 || self.consumers[scanner][1].len() != 1 {
            return Err("a skip-target scanner's outputs must feed only the intersecter".into());
        }
        if self
            .skip_lanes
            .iter()
            .any(|s| (s.intersecter == e.from.0 && s.operand == operand) || s.scanner == scanner)
        {
            return Err("duplicate skip lane".into());
        }
        self.consumers[e.from.0][3 + operand].push((scanner, 1));
        self.skip_lanes.push(SkipLane { intersecter: e.from.0, operand, scanner });
        Ok(())
    }

    /// The type flowing into `slot` of `node` (`Unknown` when unbound).
    fn in_type(&self, node: usize, slot: usize) -> StreamType {
        match self.node_inputs[node][slot] {
            Some(src) => self.types[src.node][src.port].clone(),
            None => StreamType::Unknown,
        }
    }

    /// Reports an unknown tensor once per name.
    fn unknown_tensor(&mut self, node: usize, tensor: &str) {
        if self.unknown_reported.insert(tensor.to_string()) {
            self.diag(
                Rule::UnknownTensor,
                node,
                format!("`{}` references tensor `{tensor}`, which is not bound", self.label(node)),
            );
        }
    }

    /// Stream-type inference in topological order (planner phase 5 as a
    /// typing pass), plus the writer-set rules, which need no order.
    fn infer_types(&mut self) {
        let nodes = self.graph.nodes().to_vec();

        // Writer-set rules are order-free: count the values writers even
        // when a cycle blocks inference.
        let vals_writers: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, k)| matches!(k, NodeKind::LevelWriter { vals: true, .. }))
            .map(|(i, _)| i)
            .collect();
        if vals_writers.is_empty() {
            self.report.push(Diagnostic::new(
                Rule::MissingValsWriter,
                "the graph writes no values stream, so it computes nothing".to_string(),
            ));
        }
        for &extra in vals_writers.iter().skip(1) {
            self.diag(
                Rule::MultipleValsWriters,
                extra,
                format!("`{}` is a second values writer; a graph may have only one", self.label(extra)),
            );
        }

        if !self.acyclic {
            return;
        }

        // Index variables introduced so far, in the same (topological)
        // order the planner records dimensions in.
        let mut dims: HashSet<char> = HashSet::new();

        for id in self.order.clone() {
            match &nodes[id] {
                NodeKind::Root { tensor } => {
                    if let Some(b) = self.bindings {
                        if b.get(tensor).is_none() {
                            self.unknown_tensor(id, tensor);
                        }
                    }
                    self.types[id][0] = StreamType::Ref { tensor: tensor.clone(), depth: 0 };
                }
                NodeKind::LevelScanner { tensor, index, compressed } => {
                    dims.insert(*index);
                    self.types[id][0] = StreamType::Crd { index: Some(*index) };
                    self.types[id][1] = self.descend_ref(id, 0, tensor, Some(*compressed));
                }
                NodeKind::Locator { tensor, index } => {
                    dims.insert(*index);
                    self.types[id][0] = StreamType::Crd { index: Some(*index) };
                    let down = self.descend_ref(id, 1, tensor, None);
                    self.types[id][1] = match &down {
                        // The passthrough ref stays at the parent depth.
                        StreamType::Ref { tensor, depth } => {
                            StreamType::Ref { tensor: tensor.clone(), depth: depth - 1 }
                        }
                        other => other.clone(),
                    };
                    self.types[id][2] = down;
                }
                NodeKind::Repeater { .. } => {
                    self.types[id][0] = self.in_type(id, 1);
                }
                NodeKind::Intersecter { index } | NodeKind::Unioner { index } => {
                    self.types[id][0] = StreamType::Crd { index: Some(*index) };
                    self.types[id][1] = self.in_type(id, 2);
                    self.types[id][2] = self.in_type(id, 3);
                    // Intersecter skip outputs (ports 3, 4) stay Unknown.
                }
                NodeKind::Array { tensor } => {
                    let bound = match self.bindings {
                        Some(b) => match b.get(tensor) {
                            Some(t) => Some(t),
                            None => {
                                self.unknown_tensor(id, tensor);
                                None
                            }
                        },
                        None => None,
                    };
                    // Untracked streams stay permissive, like the planner.
                    if let StreamType::Ref { tensor: t, depth } = self.in_type(id, 0) {
                        if &t != tensor {
                            self.diag(
                                Rule::TensorMismatch,
                                id,
                                format!(
                                    "`{}` loads values of `{tensor}` but its reference \
                                     stream iterates `{t}`",
                                    self.label(id)
                                ),
                            );
                        } else if let Some(bound) = bound {
                            let levels = bound.levels().len();
                            if depth != levels {
                                self.diag(
                                    Rule::RankMismatch,
                                    id,
                                    format!(
                                        "`{}` reads values of `{tensor}` after consuming \
                                         {depth} of its {levels} storage levels — the graph's \
                                         rank does not match the bound tensor's",
                                        self.label(id)
                                    ),
                                );
                            }
                        }
                    }
                    self.types[id][0] = StreamType::Val;
                }
                NodeKind::ConstVal { tensor, .. } => {
                    if !tensor.is_empty() {
                        if let Some(b) = self.bindings {
                            match b.get(tensor) {
                                None => self.unknown_tensor(id, tensor),
                                Some(bound) => {
                                    if bound.vals().len() != 1
                                        || bound.levels().iter().any(|l| l.dimension() > 1)
                                    {
                                        self.diag(
                                            Rule::ScalarIntoStream,
                                            id,
                                            format!(
                                                "`{}` collapses tensor `{tensor}` into a zero-index \
                                                 constant, but it is not a scalar ({} values, dims {:?})",
                                                self.label(id),
                                                bound.vals().len(),
                                                bound
                                                    .levels()
                                                    .iter()
                                                    .map(|l| l.dimension())
                                                    .collect::<Vec<_>>()
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    self.types[id][0] = StreamType::Val;
                }
                NodeKind::Alu { op } => {
                    if !matches!(op.as_str(), "add" | "sub" | "mul") {
                        self.diag(
                            Rule::UnknownAluOp,
                            id,
                            format!("`{}` names unknown ALU operation `{op}`", self.label(id)),
                        );
                    }
                    self.types[id][0] = StreamType::Val;
                }
                NodeKind::Reducer { order } => {
                    match order {
                        0 => self.types[id][0] = StreamType::Val,
                        1 => {
                            self.types[id][0] = StreamType::Crd { index: None };
                            self.types[id][1] = StreamType::Val;
                        }
                        _ => {
                            self.types[id][0] = StreamType::Crd { index: None };
                            self.types[id][1] = StreamType::Crd { index: None };
                            self.types[id][2] = StreamType::Val;
                        }
                    };
                }
                NodeKind::CoordDropper { index } => {
                    self.types[id][0] = StreamType::Crd { index: Some(*index) };
                    // The inner passthrough is legitimately untracked.
                    self.types[id][1] = StreamType::Unknown;
                }
                NodeKind::LevelWriter { index, vals, .. } => {
                    if !vals && !dims.contains(index) {
                        self.diag(
                            Rule::UnknownDimension,
                            id,
                            format!(
                                "`{}` writes level `{index}`, but no scanner or locator introduces \
                                 that index variable, so its dimension is undefined",
                                self.label(id)
                            ),
                        );
                    }
                }
                NodeKind::Parallelizer | NodeKind::Serializer | NodeKind::BitvectorConverter => {
                    for t in &mut self.types[id] {
                        *t = StreamType::Tainted;
                    }
                }
            }
        }
    }

    /// Shared scanner/locator reference descent: checks the incoming ref
    /// stream against the declared tensor and the bound storage, records
    /// nothing on taint, and returns the child-level reference type.
    ///
    /// `compressed` is the scanner's format annotation (`None` for
    /// locators, which the planner does not format-check).
    fn descend_ref(&mut self, id: usize, slot: usize, tensor: &str, compressed: Option<bool>) -> StreamType {
        match self.in_type(id, slot) {
            StreamType::Ref { tensor: t, depth } => {
                if t != tensor {
                    self.diag(
                        Rule::TensorMismatch,
                        id,
                        format!(
                            "`{}` iterates `{tensor}` but its reference stream comes from `{t}`",
                            self.label(id)
                        ),
                    );
                    return StreamType::Tainted;
                }
                if let Some(b) = self.bindings {
                    match b.get(tensor) {
                        None => {
                            self.unknown_tensor(id, tensor);
                        }
                        Some(bound) => {
                            if depth >= bound.levels().len() {
                                self.diag(
                                    Rule::LevelOutOfRange,
                                    id,
                                    format!(
                                        "`{}` descends to storage level {depth} of `{tensor}`, \
                                         which has only {} levels",
                                        self.label(id),
                                        bound.levels().len()
                                    ),
                                );
                                return StreamType::Tainted;
                            }
                            if let Some(compressed) = compressed {
                                if bound.level(depth).is_dense() == compressed {
                                    self.diag(
                                        Rule::FormatMismatch,
                                        id,
                                        format!(
                                            "`{}` expects a {} level, but level {depth} of the \
                                             bound `{tensor}` is {}",
                                            self.label(id),
                                            if compressed { "compressed" } else { "dense" },
                                            if compressed { "dense" } else { "compressed" },
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
                StreamType::Ref { tensor: tensor.to_string(), depth: depth + 1 }
            }
            StreamType::Tainted => StreamType::Tainted,
            // Crd/Val cannot arrive here (port kinds); Unknown is a
            // genuinely untracked reference, which the planner rejects.
            _ => {
                self.diag(
                    Rule::TensorMismatch,
                    id,
                    format!("`{}` iterates `{tensor}` but its reference stream is untracked", self.label(id)),
                );
                StreamType::Tainted
            }
        }
    }
}
