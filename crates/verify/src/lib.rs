//! # sam-verify — static analysis for SAM graphs
//!
//! A static verification pass over [`sam_core::graph::SamGraph`] that runs
//! *before* planning. The SAM paper (Sec. 4) defines streams as a typed
//! protocol — rank, token grammar, skip-lane contract — and this crate
//! checks that protocol by cheap abstract interpretation over the graph's
//! transition structure, reporting typed [`Diagnostic`]s instead of the
//! planner's first-error-wins rejections or a backend's mid-run panic.
//!
//! Three analyses share one dataflow framework ([`Analysis`]):
//!
//! 1. **Stream-type inference + protocol checking** ([`verify`] /
//!    [`verify_bound`]) — propagates an abstract stream type (crd/ref/val
//!    kind, tensor, storage depth, index variable) along every edge and
//!    reports rank mismatches, dangling/duplicated ports, illegal skip
//!    lanes, scalar-into-stream errors, and `ConstVal` misuse. The error
//!    rules are a strict superset of the planner's validation: every graph
//!    `sam_exec::Plan::build` rejects fails verification with a more
//!    specific diagnostic, and the planner's rank check *delegates* to
//!    [`Analysis::ref_annotation`].
//! 2. **Channel-topology deadlock analysis** ([`deadlock::analyze`]) —
//!    classifies which graphs can deadlock at a given bounded-channel
//!    budget without the pipelined backend's spill escape.
//! 3. **Graph lints** — dead nodes, discarded value streams, forks that
//!    should be broadcasts, and missing skip edges where the compiler's
//!    format heuristic (`LowerOptions::skip_edges`) would fire.
//!
//! The `samlint` binary (in `sam-bench`) fronts all of this on the command
//! line; `custard::lower_exec`, the executor's `Planner`, and
//! `sam_serve::Service::submit` run it implicitly.

#![warn(missing_docs)]

pub mod analysis;
pub mod deadlock;
pub mod diag;
pub mod lints;

pub use analysis::{Analysis, Bindings, StreamType};
pub use deadlock::ChannelBudget;
pub use diag::{Diagnostic, Report, Rule, Severity};

use sam_core::graph::SamGraph;

/// Verifies `graph` structurally (no tensor bindings): port protocol,
/// acyclicity, skip-lane contract, writer rules, plus all graph lints.
///
/// Binding-level rules (unknown tensors, rank, level formats, scalar-ness)
/// need [`verify_bound`].
pub fn verify(graph: &SamGraph) -> Report {
    verify_with(graph, None)
}

/// Verifies `graph` against a set of bound tensors: everything [`verify`]
/// checks plus the binding-level rules.
pub fn verify_bound(graph: &SamGraph, bindings: &Bindings<'_>) -> Report {
    verify_with(graph, Some(bindings))
}

fn verify_with(graph: &SamGraph, bindings: Option<&Bindings<'_>>) -> Report {
    let analysis = Analysis::run(graph, bindings);
    let mut report = analysis.report.clone();
    lints::run(graph, &analysis, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_core::graphs;

    #[test]
    fn catalog_spmv_is_clean() {
        let report = verify(&graphs::spmv());
        assert!(report.diagnostics.is_empty(), "{}", report.render());
    }

    #[test]
    fn rule_ids_are_stable_and_unique() {
        let rules = [
            Rule::NotYetLowerable,
            Rule::PortKindMismatch,
            Rule::AmbiguousPort,
            Rule::ExtraInput,
            Rule::DuplicateInput,
            Rule::DanglingInput,
            Rule::DataCycle,
            Rule::IllegalSkipEdge,
            Rule::TensorMismatch,
            Rule::UnknownTensor,
            Rule::LevelOutOfRange,
            Rule::FormatMismatch,
            Rule::RankMismatch,
            Rule::ScalarIntoStream,
            Rule::UnknownAluOp,
            Rule::MissingValsWriter,
            Rule::MultipleValsWriters,
            Rule::UnknownDimension,
            Rule::DeadNode,
            Rule::UnusedOutput,
            Rule::ForkShouldBroadcast,
            Rule::MissingSkipEdge,
            Rule::BoundedDeadlock,
        ];
        let ids: std::collections::HashSet<&str> = rules.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), rules.len());
    }
}
