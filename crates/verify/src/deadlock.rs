//! Channel-topology deadlock analysis.
//!
//! The pipelined backend gives every planned channel a bounded chunked
//! queue. A producer whose consumer is attached blocks under backpressure;
//! one whose consumer has not been claimed yet takes the spill-past-depth
//! escape (`sam_streams::chunked`). *Without* that escape, a bounded
//! topology can deadlock on reconvergent fork–join shapes: a fork must
//! emit each token to all of its consumers, so when one branch's channel
//! fills while the join still waits for tokens staged on the other branch
//! (a scanner expanding refs into fibers, a reducer holding a whole fiber
//! before emitting, a repeater or dropper re-timing its streams), the fork
//! blocks and the starving branch can never be fed — a cycle through
//! bounded channels.
//!
//! This pass classifies those shapes statically: for every fork whose
//! branches reconverge at a common descendant, if either branch contains a
//! rate-changing (staging) operator and the fork's estimated stream does
//! not fit in the analyzed channel budget, the graph can deadlock at that
//! budget and is reported with [`Rule::BoundedDeadlock`]. The estimates
//! mirror the planner's upper-bound stream sizing, so a budget derived
//! from `Plan::channel_depth` is never flagged — which is exactly why the
//! planner-derived depths eliminate the fixed-config spills observed by
//! `Execution::spills`.

use crate::analysis::{Analysis, Bindings};
use crate::diag::{Diagnostic, Report, Rule};
use sam_core::graph::{NodeId, NodeKind, SamGraph};

/// The bounded-channel capacity to analyze against: every channel holds at
/// most `depth` chunks of `chunk_len` tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelBudget {
    /// Tokens per chunk.
    pub chunk_len: usize,
    /// Chunks in flight per channel.
    pub depth: usize,
}

impl ChannelBudget {
    /// Total tokens a channel holds before a producer must block or spill.
    pub fn tokens(&self) -> u64 {
        self.chunk_len as u64 * self.depth as u64
    }
}

/// Classifies `graph` at the given channel budget and returns a report
/// with one [`Rule::BoundedDeadlock`] warning per deadlock-capable
/// fork–join (empty when the graph is safe at that budget).
///
/// The analysis needs valid bindings for its stream-size estimates; if the
/// graph does not verify cleanly the report of those *errors* is returned
/// instead, since deadlock behavior is undefined for graphs the planner
/// rejects.
pub fn analyze(graph: &SamGraph, bindings: &Bindings<'_>, budget: ChannelBudget) -> Report {
    let analysis = Analysis::run(graph, Some(bindings));
    if analysis.report.has_errors() {
        return analysis.report;
    }
    let mut report = Report::default();
    classify(graph, &analysis, bindings, budget, &mut report);
    report
}

/// Whether a node changes the token rate between its inputs and outputs —
/// the operators that create unbounded skew between reconvergent branches.
fn staging(kind: &NodeKind) -> bool {
    matches!(
        kind,
        NodeKind::LevelScanner { .. }
            | NodeKind::Repeater { .. }
            | NodeKind::Reducer { .. }
            | NodeKind::CoordDropper { .. }
    )
}

/// Upper-bound stream-size estimates per output port, mirroring the
/// planner's phase-6 heuristic (scanners multiply by the longest fiber of
/// the level they read).
fn estimates(graph: &SamGraph, analysis: &Analysis, bindings: &Bindings<'_>) -> Vec<Vec<u64>> {
    const EST_CAP: u64 = 1 << 40;
    let nodes = graph.nodes();
    let mut sizes: Vec<Vec<u64>> = nodes.iter().map(|k| vec![0u64; k.output_ports().len()]).collect();
    for &id in &analysis.order {
        let ins: Vec<u64> = analysis
            .inputs_of(id)
            .iter()
            .map(|s| s.map(|src| sizes[src.node][src.port]).unwrap_or(0))
            .collect();
        let outs: Vec<u64> = match &nodes[id] {
            NodeKind::Root { .. } => vec![2],
            NodeKind::LevelScanner { tensor, .. } => {
                let depth = match analysis.ref_annotation(id, 1) {
                    Some((_, d)) => d - 1,
                    None => 0,
                };
                let longest = bindings
                    .get(tensor)
                    .map(|t| {
                        let level = t.level(depth);
                        if level.is_dense() {
                            level.dimension() as u64
                        } else {
                            (0..level.num_fibers()).map(|f| level.fiber_len(f) as u64).max().unwrap_or(0)
                        }
                    })
                    .unwrap_or(0);
                let est = ins[0].saturating_mul(longest + 1).min(EST_CAP);
                vec![est; 2]
            }
            NodeKind::Repeater { .. } => vec![ins[0]],
            NodeKind::Intersecter { .. } => {
                let m = ins[0].min(ins[1]);
                vec![m, m, m, 1, 1]
            }
            NodeKind::Unioner { .. } => {
                let s = ins[0].saturating_add(ins[1]).min(EST_CAP);
                vec![s; 3]
            }
            NodeKind::Locator { .. } => vec![ins[0]; 3],
            NodeKind::Array { .. } | NodeKind::ConstVal { .. } => vec![ins[0]],
            NodeKind::Alu { .. } => vec![ins[0].max(ins[1])],
            NodeKind::Reducer { order } => match order {
                0 => vec![ins[0]],
                1 => vec![ins[0]; 2],
                _ => vec![ins[1].max(ins[0]); 3],
            },
            NodeKind::CoordDropper { .. } => vec![ins[0], ins[1]],
            _ => vec![0; nodes[id].output_ports().len()],
        };
        sizes[id] = outs;
    }
    sizes
}

fn classify(
    graph: &SamGraph,
    analysis: &Analysis,
    bindings: &Bindings<'_>,
    budget: ChannelBudget,
    report: &mut Report,
) {
    let n = graph.len();
    let sizes = estimates(graph, analysis, bindings);

    // Forward reachability per node over the data channels (skip feedback
    // lanes are excluded: they are the whitelisted cycle). Tiny graphs:
    // the quadratic table is cheaper than being clever.
    let skip_port =
        |node: usize, port: usize| matches!(graph.nodes()[node], NodeKind::Intersecter { .. }) && port >= 3;
    let mut reach: Vec<Vec<bool>> = vec![vec![false; n]; n];
    for &id in analysis.order.iter().rev() {
        let mut row = vec![false; n];
        row[id] = true;
        for (port, conns) in analysis.consumers_of(id).iter().enumerate() {
            if skip_port(id, port) {
                continue;
            }
            for &(to, _) in conns {
                for k in 0..n {
                    row[k] |= reach[to][k];
                }
            }
        }
        reach[id] = row;
    }

    // Every node with two or more outgoing channels (across all of its
    // ports — the runtime gives each channel its own bounded queue and the
    // node emits to all of them as it runs) is a divergence point. For a
    // pair of channels X and Y from the same node that reconverge at a
    // join J: if X's estimated stream overflows its bounded capacity while
    // Y's branch *stages* tokens (an operator between Y's consumer and J
    // changes token rates, so J cannot make progress until the staged
    // fiber arrives), the producer blocks on full X and Y starves — a
    // cycle through bounded channels.
    let mut flagged: Vec<(usize, usize, usize)> = Vec::new();
    for (fork, fork_sizes) in sizes.iter().enumerate() {
        let outs: Vec<(usize, usize)> = analysis
            .consumers_of(fork)
            .iter()
            .enumerate()
            .filter(|&(port, _)| !skip_port(fork, port))
            .flat_map(|(port, conns)| conns.iter().map(move |&(to, _)| (port, to)))
            .collect();
        if outs.len() < 2 {
            continue;
        }
        for &(px, tx) in &outs {
            let required = fork_sizes.get(px).copied().unwrap_or(0);
            if required <= budget.tokens() {
                continue;
            }
            for &(py, ty) in &outs {
                if (px, tx) == (py, ty) {
                    continue;
                }
                // The earliest common descendant in topological order is
                // the join where the branches must resynchronize.
                let join = analysis.order.iter().copied().find(|&x| reach[tx][x] && reach[ty][x]);
                let Some(join) = join else { continue };
                let y_stages = (0..n).any(|x| reach[ty][x] && reach[x][join] && staging(&graph.nodes()[x]));
                if !y_stages || flagged.contains(&(fork, px, join)) {
                    continue;
                }
                flagged.push((fork, px, join));
                report.push(
                    Diagnostic::new(
                        Rule::BoundedDeadlock,
                        format!(
                            "`{}` diverges into branches that reconverge at `{}`: the branch \
                             from output port {px} buffers an estimated {required} tokens but a \
                             channel holds only {} ({}x{}), while the sibling branch stages — \
                             without the spill escape this topology can deadlock",
                            graph.node_label(NodeId(fork)),
                            graph.node_label(NodeId(join)),
                            budget.tokens(),
                            budget.chunk_len,
                            budget.depth,
                        ),
                    )
                    .at(join, graph.node_label(NodeId(join)))
                    .on_port(px),
                );
            }
        }
    }
}
