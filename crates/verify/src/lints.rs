//! Graph lints: structurally legal graphs with shapes the verifier
//! considers suspicious. All lints fire at [`Severity::Warning`].
//!
//! [`Severity::Warning`]: crate::Severity

use crate::analysis::{Analysis, StreamType};
use crate::diag::{Diagnostic, Report, Rule};
use sam_core::graph::{NodeId, NodeKind, SamGraph};

/// Fan-out a planned fork replicates without complaint; anything wider
/// should be restructured as a broadcast (the widest hand-written catalog
/// kernel forks a port three ways).
pub const MAX_FORK_FANOUT: usize = 3;

/// Runs every lint over a completed analysis, appending findings to
/// `report`. Lints need the resolved topology, so they are skipped when
/// the graph has a data cycle.
pub fn run(graph: &SamGraph, analysis: &Analysis, report: &mut Report) {
    if !analysis.acyclic() {
        return;
    }
    let nodes = graph.nodes();
    let n = nodes.len();

    // Backward reachability from the writers: a node none of whose streams
    // contribute to any writer is dead weight.
    let mut live = vec![false; n];
    let mut stack: Vec<usize> =
        (0..n).filter(|&i| matches!(nodes[i], NodeKind::LevelWriter { .. })).collect();
    for &w in &stack {
        live[w] = true;
    }
    while let Some(u) = stack.pop() {
        for src in analysis.inputs_of(u).iter().flatten() {
            if !live[src.node] {
                live[src.node] = true;
                stack.push(src.node);
            }
        }
    }
    for (i, &alive) in live.iter().enumerate() {
        if !alive {
            report.push(
                Diagnostic::new(
                    Rule::DeadNode,
                    format!(
                        "`{}` reaches no writer; its work is computed and discarded",
                        graph.node_label(NodeId(i))
                    ),
                )
                .at(i, graph.node_label(NodeId(i))),
            );
        }
    }

    for i in 0..n {
        if !live[i] {
            continue;
        }
        for (port, conns) in analysis.consumers_of(i).iter().enumerate() {
            // A live node discarding a computed value stream.
            if conns.is_empty()
                && analysis.stream_type(i, port) == Some(&StreamType::Val)
                && !matches!(
                    nodes[i],
                    NodeKind::Parallelizer | NodeKind::Serializer | NodeKind::BitvectorConverter
                )
            {
                report.push(
                    Diagnostic::new(
                        Rule::UnusedOutput,
                        format!(
                            "value output port {port} of `{}` has no consumer; the computed \
                             values are discarded",
                            graph.node_label(NodeId(i))
                        ),
                    )
                    .at(i, graph.node_label(NodeId(i)))
                    .on_port(port),
                );
            }
            // Fan-out wider than a fork comfortably replicates.
            if conns.len() > MAX_FORK_FANOUT {
                report.push(
                    Diagnostic::new(
                        Rule::ForkShouldBroadcast,
                        format!(
                            "output port {port} of `{}` fans out to {} consumers; a fork \
                             replicates every token per consumer — restructure as a broadcast",
                            graph.node_label(NodeId(i)),
                            conns.len()
                        ),
                    )
                    .at(i, graph.node_label(NodeId(i)))
                    .on_port(port),
                );
            }
        }
    }

    // Missing skip edges, mirroring the compiler's heuristic
    // (`LowerOptions::skip_edges`): a binary intersection whose two
    // operands come straight from scanners of skewed density (one dense,
    // one compressed) gallops in O(1) on the dense side — but only if the
    // Section 4.2 feedback lanes are wired.
    for i in 0..n {
        if !matches!(nodes[i], NodeKind::Intersecter { .. }) {
            continue;
        }
        if analysis.skip_lanes().iter().any(|l| l.intersecter == i) {
            continue;
        }
        let scanner_of = |slot: usize, port: usize| {
            analysis.inputs_of(i)[slot].filter(|src| src.port == port).and_then(|src| {
                match &nodes[src.node] {
                    NodeKind::LevelScanner { compressed, .. } => Some((src.node, *compressed)),
                    _ => None,
                }
            })
        };
        let (Some((s0, c0)), Some((s1, c1))) = (scanner_of(0, 0), scanner_of(1, 0)) else {
            continue;
        };
        // The heuristic fires on skewed density only, and only when the
        // lanes would be legal: refs from the same scanners, and each
        // scanner private to this intersecter.
        let refs_match =
            scanner_of(2, 1).map(|(s, _)| s) == Some(s0) && scanner_of(3, 1).map(|(s, _)| s) == Some(s1);
        let private =
            |s: usize| analysis.consumers_of(s)[0].len() == 1 && analysis.consumers_of(s)[1].len() == 1;
        if c0 != c1 && refs_match && private(s0) && private(s1) {
            report.push(
                Diagnostic::new(
                    Rule::MissingSkipEdge,
                    format!(
                        "`{}` intersects a compressed level with a dense one but has no \
                         coordinate-skip lanes; the format heuristic (`LowerOptions::skip_edges`) \
                         would wire them and enable galloping",
                        graph.node_label(NodeId(i))
                    ),
                )
                .at(i, graph.node_label(NodeId(i))),
            );
        }
    }
}
