//! Typed diagnostics: rule identifiers, severities, and the report a
//! verification pass returns.

use std::fmt;

/// How bad a finding is.
///
/// Errors are graphs the planner would (or should) reject; warnings are
/// legal graphs with a structure the lints consider suspicious.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable.
    Warning,
    /// The graph cannot execute correctly.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Every rule the verifier can fire, with a stable kebab-case id.
///
/// The error rules are a strict superset of the planner's validation (each
/// `sam_exec::PlanError` structural/binding class maps onto one rule);
/// the warning rules are the graph lints. See ARCHITECTURE.md for the full
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// A primitive no backend can lower yet (`Parallelizer`, `Serializer`,
    /// `BitvectorConverter`).
    NotYetLowerable,
    /// An edge names an out-of-range port or one that cannot carry its
    /// stream kind.
    PortKindMismatch,
    /// An unported edge could not be attributed to a unique output port.
    AmbiguousPort,
    /// A node received more inputs than its signature accepts.
    ExtraInput,
    /// Two edges claim the same input port.
    DuplicateInput,
    /// A mandatory input port has no incoming edge.
    DanglingInput,
    /// The data edges (everything except skip feedback lanes) contain a
    /// cycle.
    DataCycle,
    /// A coordinate-skip feedback lane violates the Section 4.2 contract.
    IllegalSkipEdge,
    /// A reference stream reaches a node declared for a different tensor.
    TensorMismatch,
    /// A node names a tensor that is not bound.
    UnknownTensor,
    /// A reference stream descends below the tensor's last storage level.
    LevelOutOfRange,
    /// A scanner's compressed/dense annotation contradicts the bound level.
    FormatMismatch,
    /// A value array's reference stream stops short of (or overshoots) the
    /// bound tensor's rank.
    RankMismatch,
    /// A non-scalar tensor is collapsed into a zero-index constant access —
    /// a whole stream squeezed through a scalar port.
    ScalarIntoStream,
    /// An ALU names an operation no backend implements.
    UnknownAluOp,
    /// The graph writes no values stream.
    MissingValsWriter,
    /// More than one node writes the values stream.
    MultipleValsWriters,
    /// A level writer uses an index variable no scanner or locator
    /// introduces, so its output dimension is undefined.
    UnknownDimension,
    /// Lint: the node cannot reach any writer, so its work is discarded.
    DeadNode,
    /// Lint: a computed value stream has no consumer.
    UnusedOutput,
    /// Lint: an output port fans out wider than a fork comfortably
    /// replicates; restructure as a broadcast (repeat) instead.
    ForkShouldBroadcast,
    /// Lint: an intersection of levels with skewed formats has no skip
    /// lanes even though the compiler's heuristic would wire them.
    MissingSkipEdge,
    /// A reconvergent fork–join can deadlock at the analyzed channel
    /// budget without the spill escape.
    BoundedDeadlock,
}

impl Rule {
    /// The stable diagnostic id (`error[rank-mismatch]: ...`).
    pub fn id(&self) -> &'static str {
        match self {
            Rule::NotYetLowerable => "not-yet-lowerable",
            Rule::PortKindMismatch => "port-kind-mismatch",
            Rule::AmbiguousPort => "ambiguous-port",
            Rule::ExtraInput => "extra-input",
            Rule::DuplicateInput => "duplicate-input",
            Rule::DanglingInput => "dangling-input",
            Rule::DataCycle => "data-cycle",
            Rule::IllegalSkipEdge => "illegal-skip-edge",
            Rule::TensorMismatch => "tensor-mismatch",
            Rule::UnknownTensor => "unknown-tensor",
            Rule::LevelOutOfRange => "level-out-of-range",
            Rule::FormatMismatch => "format-mismatch",
            Rule::RankMismatch => "rank-mismatch",
            Rule::ScalarIntoStream => "scalar-into-stream",
            Rule::UnknownAluOp => "unknown-alu-op",
            Rule::MissingValsWriter => "missing-vals-writer",
            Rule::MultipleValsWriters => "multiple-vals-writers",
            Rule::UnknownDimension => "unknown-dimension",
            Rule::DeadNode => "dead-node",
            Rule::UnusedOutput => "unused-output",
            Rule::ForkShouldBroadcast => "fork-should-broadcast",
            Rule::MissingSkipEdge => "missing-skip-edge",
            Rule::BoundedDeadlock => "bounded-deadlock",
        }
    }

    /// The severity this rule always fires at.
    pub fn severity(&self) -> Severity {
        match self {
            Rule::DeadNode
            | Rule::UnusedOutput
            | Rule::ForkShouldBroadcast
            | Rule::MissingSkipEdge
            | Rule::BoundedDeadlock => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding: a rule, where it fired, and a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Severity (always `rule.severity()`).
    pub severity: Severity,
    /// Index of the offending node, when the finding is anchored to one.
    pub node: Option<usize>,
    /// Display label of the offending node (builder/compiler label when
    /// one was attached).
    pub label: Option<String>,
    /// The offending port index on that node, when one is implicated.
    pub port: Option<usize>,
    /// What went wrong, in terms of the graph's own labels.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(rule: Rule, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: rule.severity(),
            node: None,
            label: None,
            port: None,
            message: message.into(),
        }
    }

    pub(crate) fn at(mut self, node: usize, label: String) -> Self {
        self.node = Some(node);
        self.label = Some(label);
        self
    }

    pub(crate) fn on_port(mut self, port: usize) -> Self {
        self.port = Some(port);
        self
    }
}

impl fmt::Display for Diagnostic {
    /// Rustc-style rendering: `error[rule-id]: message` plus an arrow line
    /// locating the node and port.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.rule.id(), self.message)?;
        if let Some(label) = &self.label {
            write!(f, "\n  --> node {} `{}`", self.node.unwrap_or(0), label)?;
            if let Some(port) = self.port {
                write!(f, ", port {port}")?;
            }
        }
        Ok(())
    }
}

/// The outcome of a verification pass: every diagnostic found, in graph
/// order (the verifier does not stop at the first problem).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All findings, errors and warnings interleaved in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Findings with [`Severity::Warning`].
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any error-severity rule fired.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// How often the given rule fired.
    pub fn count(&self, rule: Rule) -> usize {
        self.diagnostics.iter().filter(|d| d.rule == rule).count()
    }

    /// Rustc-style multi-line rendering of every finding plus a summary
    /// line; empty string when the report is clean.
    pub fn render(&self) -> String {
        if self.diagnostics.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.error_count();
        let warnings = self.diagnostics.len() - errors;
        out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
        out
    }

    /// Appends a diagnostic — tools merging several analyses' findings
    /// (e.g. `samlint` folding deadlock verdicts into the verify report)
    /// push through this.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }
}
