//! Every verifier rule fires on a deliberately-broken fixture — exactly
//! once — and the whole hand-written catalog verifies clean.

use sam_core::build::GraphBuilder;
use sam_core::graph::{NodeId, NodeKind, SamGraph, StreamKind};
use sam_core::graphs;
use sam_core::kernels::spmm::SpmmDataflow;
use sam_tensor::{Tensor, TensorFormat};
use sam_verify::{deadlock, verify, verify_bound, Bindings, ChannelBudget, Rule, Severity};

/// A minimal valid identity kernel built by hand so each fixture can
/// rewire it: `x(i) = b(i)` over a compressed vector.
///
/// Nodes: 0 root, 1 scanner, 2 array, 3 crd writer, 4 vals writer.
fn base_nodes() -> SamGraph {
    base_nodes_with(true, 'i')
}

fn base_nodes_with(compressed: bool, writer_index: char) -> SamGraph {
    let mut g = SamGraph::new("fixture");
    g.add_node(NodeKind::Root { tensor: "b".into() });
    g.add_node(NodeKind::LevelScanner { tensor: "b".into(), index: 'i', compressed });
    g.add_node(NodeKind::Array { tensor: "b".into() });
    g.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: writer_index, vals: false });
    g.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'i', vals: true });
    g
}

/// `base_nodes` fully wired.
fn base() -> SamGraph {
    let mut g = base_nodes();
    wire_base(&mut g);
    g
}

fn wire_base(g: &mut SamGraph) {
    g.add_edge_on(NodeId(0), 0, NodeId(1), 0, StreamKind::Ref, "b ref");
    g.add_edge_on(NodeId(1), 0, NodeId(3), 0, StreamKind::Crd, "i crd");
    g.add_edge_on(NodeId(1), 1, NodeId(2), 0, StreamKind::Ref, "b refs");
    g.add_edge_on(NodeId(2), 0, NodeId(4), 0, StreamKind::Val, "b vals");
}

fn sparse_vec(name: &str, points: &[(u32, f64)]) -> Tensor {
    let coo =
        sam_tensor::CooTensor::from_entries(vec![16], points.iter().map(|&(i, v)| (vec![i], v)).collect())
            .unwrap();
    Tensor::from_coo(name, &coo, TensorFormat::sparse_vec())
}

fn fires_once(graph: &SamGraph, rule: Rule) {
    let report = verify(graph);
    assert_eq!(report.count(rule), 1, "expected `{}` exactly once:\n{}", rule.id(), report.render());
}

fn fires_once_bound(graph: &SamGraph, bindings: &Bindings<'_>, rule: Rule) {
    let report = verify_bound(graph, bindings);
    assert_eq!(report.count(rule), 1, "expected `{}` exactly once:\n{}", rule.id(), report.render());
}

#[test]
fn base_fixture_is_clean_structurally_and_bound() {
    let g = base();
    assert!(verify(&g).diagnostics.is_empty(), "{}", verify(&g).render());
    let b = sparse_vec("b", &[(1, 2.0), (5, 3.0)]);
    let bindings = Bindings::new().bind("b", &b);
    let report = verify_bound(&g, &bindings);
    assert!(report.diagnostics.is_empty(), "{}", report.render());
}

#[test]
fn not_yet_lowerable_fires_once() {
    let mut g = base();
    g.add_node(NodeKind::Parallelizer);
    fires_once(&g, Rule::NotYetLowerable);
}

#[test]
fn port_kind_mismatch_fires_once() {
    // The crd edge claims a source port the scanner does not have.
    let mut g = base_nodes();
    g.add_edge_on(NodeId(0), 0, NodeId(1), 0, StreamKind::Ref, "b ref");
    g.add_edge_on(NodeId(1), 7, NodeId(3), 0, StreamKind::Crd, "i crd");
    g.add_edge_on(NodeId(1), 1, NodeId(2), 0, StreamKind::Ref, "b refs");
    g.add_edge_on(NodeId(2), 0, NodeId(4), 0, StreamKind::Val, "b vals");
    fires_once(&g, Rule::PortKindMismatch);
}

#[test]
fn ambiguous_port_fires_once() {
    // Three unported Ref edges leave a locator, which has only two Ref
    // output ports.
    let mut g = base();
    let loc = g.add_node(NodeKind::Locator { tensor: "b".into(), index: 'j' });
    g.add_edge_on(NodeId(1), 0, loc, 0, StreamKind::Crd, "crd");
    g.add_edge_on(NodeId(0), 0, loc, 1, StreamKind::Ref, "ref");
    for n in 0..3 {
        let arr = g.add_node(NodeKind::Array { tensor: "b".into() });
        g.add_edge(loc, arr, StreamKind::Ref, format!("r{n}"));
    }
    fires_once(&g, Rule::AmbiguousPort);
}

#[test]
fn extra_input_fires_once() {
    let mut g = base();
    g.add_edge(NodeId(0), NodeId(2), StreamKind::Ref, "stray ref");
    fires_once(&g, Rule::ExtraInput);
}

#[test]
fn duplicate_input_fires_once() {
    let mut g = base();
    g.add_edge_on(NodeId(0), 0, NodeId(2), 0, StreamKind::Ref, "second claim");
    fires_once(&g, Rule::DuplicateInput);
}

#[test]
fn dangling_input_fires_once() {
    // The vals writer never receives its value stream.
    let mut g = base_nodes();
    g.add_edge_on(NodeId(0), 0, NodeId(1), 0, StreamKind::Ref, "b ref");
    g.add_edge_on(NodeId(1), 0, NodeId(3), 0, StreamKind::Crd, "i crd");
    g.add_edge_on(NodeId(1), 1, NodeId(2), 0, StreamKind::Ref, "b refs");
    fires_once(&g, Rule::DanglingInput);
}

#[test]
fn data_cycle_fires_once() {
    // Two ALUs feed each other.
    let mut g = base();
    let a1 = g.add_node(NodeKind::Alu { op: "add".into() });
    let a2 = g.add_node(NodeKind::Alu { op: "mul".into() });
    g.add_edge_on(NodeId(2), 0, a1, 0, StreamKind::Val, "v1");
    g.add_edge_on(NodeId(2), 0, a2, 0, StreamKind::Val, "v2");
    g.add_edge_on(a1, 0, a2, 1, StreamKind::Val, "a1->a2");
    g.add_edge_on(a2, 0, a1, 1, StreamKind::Val, "a2->a1");
    fires_once(&g, Rule::DataCycle);
}

#[test]
fn illegal_skip_edge_fires_once() {
    let mut g = base();
    g.add_edge(NodeId(2), NodeId(1), StreamKind::Skip, "bogus lane");
    fires_once(&g, Rule::IllegalSkipEdge);
}

#[test]
fn tensor_mismatch_fires_once() {
    // The scanner claims to iterate `c` but is fed b's root references.
    let mut g = SamGraph::new("fixture");
    g.add_node(NodeKind::Root { tensor: "b".into() });
    g.add_node(NodeKind::LevelScanner { tensor: "c".into(), index: 'i', compressed: true });
    g.add_node(NodeKind::Array { tensor: "b".into() });
    g.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'i', vals: false });
    g.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'i', vals: true });
    wire_base(&mut g);
    fires_once(&g, Rule::TensorMismatch);
}

#[test]
fn unknown_tensor_fires_once_per_name() {
    // Root, scanner and array all name `b`; one missing binding is one
    // defect, not three diagnostics.
    let g = base();
    fires_once_bound(&g, &Bindings::new(), Rule::UnknownTensor);
}

#[test]
fn level_out_of_range_fires_once() {
    // A second scanner descends below a vector's single storage level.
    let mut g = base_nodes();
    let s2 = g.add_node(NodeKind::LevelScanner { tensor: "b".into(), index: 'j', compressed: true });
    g.add_edge_on(NodeId(0), 0, NodeId(1), 0, StreamKind::Ref, "b ref");
    g.add_edge_on(NodeId(1), 0, NodeId(3), 0, StreamKind::Crd, "i crd");
    g.add_edge_on(NodeId(1), 1, s2, 0, StreamKind::Ref, "b refs");
    g.add_edge_on(s2, 1, NodeId(2), 0, StreamKind::Ref, "b deep refs");
    g.add_edge_on(NodeId(2), 0, NodeId(4), 0, StreamKind::Val, "b vals");
    let b = sparse_vec("b", &[(1, 2.0)]);
    let bindings = Bindings::new().bind("b", &b);
    let report = verify_bound(&g, &bindings);
    assert_eq!(report.count(Rule::LevelOutOfRange), 1, "{}", report.render());
    // The deeper ref stream is tainted, so no rank-mismatch cascades.
    assert_eq!(report.count(Rule::RankMismatch), 0, "{}", report.render());
}

#[test]
fn format_mismatch_fires_once() {
    let g = base(); // scanner annotated compressed
    let b = Tensor::from_dense_data("b", vec![4], &[1.0, 0.0, 2.0, 0.0], TensorFormat::dense_vec());
    fires_once_bound(&g, &Bindings::new().bind("b", &b), Rule::FormatMismatch);
}

#[test]
fn rank_mismatch_fires_once() {
    // A matrix bound to a vector kernel: the array reads values after one
    // of two levels.
    let mut g = base_nodes_with(false, 'i');
    wire_base(&mut g);
    let b = Tensor::from_dense_data("b", vec![2, 2], &[1.0, 2.0, 3.0, 4.0], TensorFormat::dense(2));
    fires_once_bound(&g, &Bindings::new().bind("b", &b), Rule::RankMismatch);
}

#[test]
fn scalar_into_stream_fires_once() {
    // A two-element vector collapsed into a zero-index constant access.
    let mut g = base_nodes();
    let c = g.add_node(NodeKind::ConstVal { tensor: "s".into(), bits: 0 });
    g.add_edge_on(NodeId(0), 0, NodeId(1), 0, StreamKind::Ref, "b ref");
    g.add_edge_on(NodeId(1), 0, NodeId(3), 0, StreamKind::Crd, "i crd");
    g.add_edge_on(NodeId(1), 1, NodeId(2), 0, StreamKind::Ref, "b refs");
    g.add_edge_on(NodeId(2), 0, c, 0, StreamKind::Val, "shape");
    g.add_edge_on(c, 0, NodeId(4), 0, StreamKind::Val, "s vals");
    let b = sparse_vec("b", &[(1, 2.0)]);
    let s = sparse_vec("s", &[(0, 1.0), (3, 2.0)]);
    let bindings = Bindings::new().bind("b", &b).bind("s", &s);
    fires_once_bound(&g, &bindings, Rule::ScalarIntoStream);
}

#[test]
fn unknown_alu_op_fires_once() {
    let mut g = base_nodes();
    let alu = g.add_node(NodeKind::Alu { op: "div".into() });
    g.add_edge_on(NodeId(0), 0, NodeId(1), 0, StreamKind::Ref, "b ref");
    g.add_edge_on(NodeId(1), 0, NodeId(3), 0, StreamKind::Crd, "i crd");
    g.add_edge_on(NodeId(1), 1, NodeId(2), 0, StreamKind::Ref, "b refs");
    g.add_edge_on(NodeId(2), 0, alu, 0, StreamKind::Val, "lhs");
    g.add_edge_on(NodeId(2), 0, alu, 1, StreamKind::Val, "rhs");
    g.add_edge_on(alu, 0, NodeId(4), 0, StreamKind::Val, "vals");
    fires_once(&g, Rule::UnknownAluOp);
}

#[test]
fn missing_vals_writer_fires_once() {
    let mut g = SamGraph::new("fixture");
    g.add_node(NodeKind::Root { tensor: "b".into() });
    g.add_node(NodeKind::LevelScanner { tensor: "b".into(), index: 'i', compressed: true });
    g.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'i', vals: false });
    g.add_edge_on(NodeId(0), 0, NodeId(1), 0, StreamKind::Ref, "b ref");
    g.add_edge_on(NodeId(1), 0, NodeId(2), 0, StreamKind::Crd, "i crd");
    fires_once(&g, Rule::MissingValsWriter);
}

#[test]
fn multiple_vals_writers_fires_once() {
    let mut g = base();
    let w2 = g.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'i', vals: true });
    g.add_edge_on(NodeId(2), 0, w2, 0, StreamKind::Val, "vals again");
    fires_once(&g, Rule::MultipleValsWriters);
}

#[test]
fn unknown_dimension_fires_once() {
    let mut g = base_nodes_with(true, 'z');
    wire_base(&mut g);
    fires_once(&g, Rule::UnknownDimension);
}

#[test]
fn dead_node_fires_once() {
    let mut g = base();
    g.add_node(NodeKind::Root { tensor: "c".into() });
    let report = verify(&g);
    assert_eq!(report.count(Rule::DeadNode), 1, "{}", report.render());
    assert!(!report.has_errors(), "lints are warnings:\n{}", report.render());
}

#[test]
fn unused_output_fires_once() {
    // An order-1 reducer whose coordinate output is used but whose value
    // output is discarded.
    let mut g = base();
    let red = g.add_node(NodeKind::Reducer { order: 1 });
    let w = g.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'i', vals: false });
    g.add_edge_on(NodeId(1), 0, red, 0, StreamKind::Crd, "crd in");
    g.add_edge_on(NodeId(2), 0, red, 1, StreamKind::Val, "val in");
    g.add_edge_on(red, 0, w, 0, StreamKind::Crd, "crd out");
    let report = verify(&g);
    assert_eq!(report.count(Rule::UnusedOutput), 1, "{}", report.render());
    assert!(!report.has_errors(), "{}", report.render());
}

#[test]
fn fork_should_broadcast_fires_once() {
    let mut g = base();
    // The array's value port already feeds the vals writer; three more
    // consumers push the fan-out past the fork threshold.
    for n in 0..3 {
        let c = g.add_node(NodeKind::ConstVal { tensor: String::new(), bits: 0 });
        g.add_edge_on(NodeId(2), 0, c, 0, StreamKind::Val, format!("c{n}"));
    }
    let report = verify(&g);
    assert_eq!(report.count(Rule::ForkShouldBroadcast), 1, "{}", report.render());
    assert_eq!(report.count(Rule::DeadNode), 3, "the shape consumers are dead:\n{}", report.render());
}

#[test]
fn missing_skip_edge_fires_once() {
    // A compressed × dense intersection without skip lanes — exactly the
    // shape `LowerOptions::skip_edges` would rewrite.
    let mut g = GraphBuilder::new("x(i) = b(i) * c(i)");
    let rb = g.root("b");
    let rc = g.root("c");
    let (b_crd, b_ref) = g.scan("b", 'i', true, rb);
    let (c_crd, c_ref) = g.scan("c", 'i', false, rc);
    let (i_crd, i_refs) = g.intersect('i', [b_crd, c_crd], [b_ref, c_ref]);
    let bv = g.array("b", i_refs[0]);
    let cv = g.array("c", i_refs[1]);
    let prod = g.alu("mul", bv, cv);
    g.write_level("x", 'i', i_crd);
    g.write_vals("x", prod);
    let graph = g.finish();
    let report = verify(&graph);
    assert_eq!(report.count(Rule::MissingSkipEdge), 1, "{}", report.render());
    // The skip-wired twin of the same shape is clean.
    let skipped = graphs::vec_elem_mul_with_skip(true);
    assert_eq!(verify(&skipped).count(Rule::MissingSkipEdge), 0);
}

#[test]
fn bounded_deadlock_flags_tiny_budgets_and_clears_planned_ones() {
    // SpMM linear combination: the row scanner diverges into the repeat
    // branch (staging) and the intersection branch; a long row stream
    // cannot fit a depth-1 channel.
    let g = graphs::spmm(SpmmDataflow::LinearCombination);
    let n = 64;
    let b = sam_tensor::synth::random_matrix_nnz(n, n, n * n / 2, 7);
    let c = sam_tensor::synth::random_matrix_nnz(n, n, n * n / 2, 8);
    let bt = Tensor::from_coo("B", &b, TensorFormat::dcsr());
    let ct = Tensor::from_coo("C", &c, TensorFormat::dcsr());
    let bindings = Bindings::new().bind("B", &bt).bind("C", &ct);

    let tiny = deadlock::analyze(&g, &bindings, ChannelBudget { chunk_len: 4, depth: 1 });
    assert!(
        tiny.diagnostics.iter().any(|d| d.rule == Rule::BoundedDeadlock),
        "a 4-token budget must be classified deadlock-capable"
    );
    assert!(tiny.diagnostics.iter().all(|d| d.severity == Severity::Warning));

    let generous = deadlock::analyze(&g, &bindings, ChannelBudget { chunk_len: 1024, depth: 8192 });
    assert_eq!(
        generous.diagnostics.len(),
        0,
        "planner-scale budgets hold the estimated streams:\n{}",
        generous.render()
    );
}

#[test]
fn catalog_sweep_is_error_free_and_warning_free_except_documented() {
    let cases: Vec<(&str, SamGraph)> = vec![
        ("vec_elem_mul(dense)", graphs::vec_elem_mul(false)),
        ("vec_elem_mul(compressed)", graphs::vec_elem_mul(true)),
        ("vec_elem_mul_with_skip(dense)", graphs::vec_elem_mul_with_skip(false)),
        ("vec_elem_mul_with_skip(compressed)", graphs::vec_elem_mul_with_skip(true)),
        ("identity", graphs::identity()),
        ("spmv", graphs::spmv()),
        ("spmv_coiteration", graphs::spmv_coiteration()),
        ("spmv_with_skip", graphs::spmv_with_skip()),
        ("spmm(linear-combination)", graphs::spmm(SpmmDataflow::LinearCombination)),
        ("spmm(inner-product)", graphs::spmm(SpmmDataflow::InnerProduct)),
        ("spmm(outer-product)", graphs::spmm(SpmmDataflow::OuterProduct)),
        ("spmm_with_skip", graphs::spmm_with_skip(SpmmDataflow::LinearCombination)),
        ("mttkrp", graphs::mttkrp()),
        ("residual", graphs::residual()),
        ("mat_trans_mul", graphs::mat_trans_mul()),
        ("plus3", graphs::plus3()),
        ("sddmm_coiteration", graphs::sddmm_coiteration()),
        ("sddmm_with_skip", graphs::sddmm_with_skip()),
    ];
    for (name, g) in cases {
        let report = verify(&g);
        assert!(!report.has_errors(), "{name} must verify error-free:\n{}", report.render());
        if name == "sddmm_coiteration" {
            // The deliberate non-skip twin of sddmm_with_skip: the lint
            // correctly reports both skewed-density intersections.
            assert_eq!(report.count(Rule::MissingSkipEdge), 2, "{name}:\n{}", report.render());
            assert_eq!(report.diagnostics.len(), 2, "{name}:\n{}", report.render());
        } else {
            assert!(report.diagnostics.is_empty(), "{name} must be lint-clean:\n{}", report.render());
        }
    }
}
