//! # sam-memory
//!
//! Finite-memory and tiling model for the paper's Section 6.4 study
//! ("Modeling Hardware with Finite Constraints", Figure 15).
//!
//! SAM itself is an abstract machine with unbounded resources; to model a
//! concrete accelerator the paper layers a two-level memory hierarchy (a
//! last-level buffer and per-PE buffers), a DRAM bandwidth, fixed-size tiles
//! and ExTensor-style *sparse tile skipping* on top of the dataflow graphs.
//! This crate reproduces that model analytically for SpM*SpM on uniformly
//! random matrices with a fixed number of nonzeros, which is exactly the
//! synthetic study of the ExTensor paper that Figure 15 recreates.

use serde::{Deserialize, Serialize};

/// Hardware parameters of the modelled accelerator (paper Section 6.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// DRAM bandwidth in bytes per second.
    pub dram_bandwidth_bytes_per_s: f64,
    /// Clock frequency in Hz used to convert time into cycles.
    pub frequency_hz: f64,
    /// Last-level buffer capacity in bytes.
    pub llb_bytes: usize,
    /// Processing-element tile size (tiles are `tile x tile`).
    pub tile: usize,
    /// Bytes per stored nonzero (value plus coordinate metadata).
    pub bytes_per_nonzero: usize,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        // The parameters quoted in Section 6.4.
        MemoryConfig {
            dram_bandwidth_bytes_per_s: 68.256e9,
            frequency_hz: 1.0e9,
            llb_bytes: 17 * 1024 * 1024,
            tile: 128,
            bytes_per_nonzero: 12,
        }
    }
}

/// The outcome of modelling one SpM*SpM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TiledSpmmEstimate {
    /// Matrix dimension (square matrices).
    pub dim: usize,
    /// Nonzeros per operand matrix.
    pub nnz: usize,
    /// Number of tiles along one dimension.
    pub grid: usize,
    /// Expected number of nonempty tiles per operand.
    pub nonempty_tiles: f64,
    /// Expected number of tile pairs that survive sparse tile skipping.
    pub effectual_tile_pairs: f64,
    /// Modelled DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// Modelled runtime in cycles.
    pub cycles: f64,
}

/// *Measured* finite-memory counters recorded by an executor backend that
/// actually tiles and runs a kernel under a [`MemoryConfig`] budget (the
/// `TiledBackend` of `sam-exec`). The analytic twin of each field lives in
/// [`TiledSpmmEstimate`]; [`compare_with_model`] lines the two up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryCounters {
    /// Bytes fetched from (operand tiles missing the LLB) or written back to
    /// (the final output) DRAM.
    pub dram_bytes: u64,
    /// High-water mark of bytes resident in the last-level buffer.
    pub llb_peak_bytes: u64,
    /// Tile tuples enumerated by the schedule.
    pub tiles_visited: u64,
    /// Tile tuples skipped because a structurally required operand tile was
    /// empty (ExTensor-style sparse tile skipping).
    pub tiles_skipped: u64,
    /// Tile tuples actually executed.
    pub tiles_executed: u64,
    /// Tiles evicted from the LLB to make room (capacity spills).
    pub spill_events: u64,
}

/// A measured execution lined up against the closed-form Section 6.4 model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelComparison {
    /// The analytic estimate.
    pub analytic: TiledSpmmEstimate,
    /// The measured counters.
    pub measured: MemoryCounters,
    /// Measured cycle estimate (from the tiled backend).
    pub measured_cycles: f64,
    /// measured / analytic DRAM traffic (1.0 = model exact).
    pub dram_ratio: f64,
    /// measured / analytic cycles (1.0 = model exact).
    pub cycle_ratio: f64,
}

/// Lines up a measured tiled run against [`model_tiled_spmm`]'s analytic
/// estimate for the same configuration, the validation step that turns
/// Figure 15 from a formula into an experiment.
pub fn compare_with_model(
    analytic: TiledSpmmEstimate,
    measured: MemoryCounters,
    measured_cycles: f64,
) -> ModelComparison {
    let ratio = |m: f64, a: f64| if a > 0.0 { m / a } else { f64::INFINITY };
    ModelComparison {
        analytic,
        measured,
        measured_cycles,
        dram_ratio: ratio(measured.dram_bytes as f64, analytic.dram_bytes),
        cycle_ratio: ratio(measured_cycles, analytic.cycles),
    }
}

/// Models tiled SpM*SpM between two uniformly random square matrices of
/// dimension `dim` with `nnz` nonzeros each (the Figure 15 x-axis sweep).
///
/// The model captures the three regimes the paper describes:
///
/// * at small dimensions nearly every tile is nonempty, so runtime grows with
///   the number of tiles that must be streamed and multiplied;
/// * as the dimension grows, tiles empty out and sparse tile skipping removes
///   tile pairs, so runtime falls;
/// * at large dimensions runtime saturates at the cost of streaming the
///   operands once from DRAM.
pub fn model_tiled_spmm(dim: usize, nnz: usize, config: &MemoryConfig) -> TiledSpmmEstimate {
    assert!(dim > 0, "dimension must be positive");
    let grid = dim.div_ceil(config.tile);
    let tiles = (grid * grid) as f64;
    let nnz_f = nnz as f64;
    // Expected occupancy with nnz nonzeros thrown uniformly into `tiles` bins.
    let nonempty_tiles = tiles * (1.0 - (1.0 - 1.0 / tiles).powf(nnz_f));
    let nnz_per_tile = nnz_f / nonempty_tiles.max(1.0);
    // Probability that a given (i, k) tile of B is nonempty.
    let p_nonempty = nonempty_tiles / tiles;
    // A tile pair (B_ik, C_kj) is fetched only when both tiles are nonempty
    // (coarse sparse tile skipping) and only produces work when the two
    // tiles share at least one k coordinate (fine-grained skipping inside
    // the tile-sequencing graph). For uniformly random placement the latter
    // probability is 1 - exp(-nnzB * nnzC / tile).
    let match_probability = 1.0 - (-(nnz_per_tile * nnz_per_tile) / config.tile as f64).exp();
    let effectual_tile_pairs = (grid as f64).powi(3) * p_nonempty * p_nonempty * match_probability;

    // Compute time: one cycle per token the dataflow actually moves. The
    // machine (TiledBackend) executes every tile tuple whose operand tiles
    // are both nonempty — coarse occupancy skipping, without the
    // fine-grained k-matching the `match_probability` term models — so the
    // token traffic scales with the *fetched* pairs, not the effectual
    // ones.
    let fetched_tile_pairs = (grid as f64).powi(3) * p_nonempty * p_nonempty;
    // Per fetched pair, fit against the measured `MemoryCounters`/token
    // counts of `fig15 --smoke` (the old `2*nnz + 8` term undercounted the
    // dataflow ~200x because it ignored rescans and control tokens):
    //  * every occupied row of the B tile rescans the C tile's k-level
    //    fiber through the repeat/scan/intersect trio (~3 tokens per fiber
    //    entry per row) — the dominant quadratic rescan term;
    //  * every stored entry streams through the scan -> intersect ->
    //    array -> ALU -> reduce chain (~8 tokens);
    //  * the ~20 blocks of the Gustavson graph each open and close their
    //    streams (roots, stops, dones: ~90 control tokens per pair).
    let tile_f = config.tile as f64;
    let occupied_rows = tile_f * (1.0 - (1.0 - 1.0 / tile_f).powf(nnz_per_tile));
    let tokens_per_pair = 3.0 * occupied_rows * occupied_rows + 8.0 * nnz_per_tile + 90.0;
    let compute_cycles = fetched_tile_pairs * tokens_per_pair;

    // Memory time: every effectual tile pair streams both operand tiles from
    // the LLB; operand tiles are refetched from DRAM once per row of tiles
    // unless the whole operand fits in the LLB.
    let bytes_per_tile = nnz_per_tile * config.bytes_per_nonzero as f64;
    let operand_bytes = nnz_f * config.bytes_per_nonzero as f64;
    let llb_resident = 2.0 * operand_bytes <= config.llb_bytes as f64;
    let refetch_factor = if llb_resident { 1.0 } else { (grid as f64).sqrt().max(1.0) };
    let dram_bytes = 2.0 * operand_bytes * refetch_factor + effectual_tile_pairs * bytes_per_tile * 0.25;
    let memory_cycles = dram_bytes / config.dram_bandwidth_bytes_per_s * config.frequency_hz;

    // Tile-sequencing overhead: the outer SAM graph co-iterates both
    // operands' tile-coordinate lists and checks occupancy metadata for
    // every tile (mirrors the measured counter: two grids, each walked).
    let sequencing_cycles = 2.0 * (2.0 * nonempty_tiles + tiles * 0.5);

    TiledSpmmEstimate {
        dim,
        nnz,
        grid,
        nonempty_tiles,
        effectual_tile_pairs,
        dram_bytes,
        cycles: compute_cycles.max(memory_cycles) + sequencing_cycles,
    }
}

/// Sweeps the Figure 15 configuration space: dimensions 1024..=15720 in steps
/// of 1336 for each nonzero count in `nnz_list`.
pub fn figure15_sweep(nnz_list: &[usize], config: &MemoryConfig) -> Vec<TiledSpmmEstimate> {
    let mut out = Vec::new();
    for &nnz in nnz_list {
        let mut dim = 1024;
        while dim <= 15720 {
            out.push(model_tiled_spmm(dim, nnz, config));
            dim += 1336;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_parameters() {
        let c = MemoryConfig::default();
        assert!((c.dram_bandwidth_bytes_per_s - 68.256e9).abs() < 1e6);
        assert_eq!(c.llb_bytes, 17 * 1024 * 1024);
        assert_eq!(c.tile, 128);
    }

    #[test]
    fn sweep_reproduces_three_regimes() {
        let config = MemoryConfig::default();
        // The compute term is fit to the measured TiledBackend, which skips
        // on coarse tile occupancy only (no fine-grained k-matching), so
        // tiles must empty out further before runtime falls: the three
        // regimes sit at a sparser operand than the paper's fine-skipping
        // machine shows them at.
        let sweep: Vec<_> = figure15_sweep(&[2000], &config);
        assert_eq!(sweep.len(), 12);
        let cycles: Vec<f64> = sweep.iter().map(|e| e.cycles).collect();
        // Regime 1: runtime rises from the smallest dimension to the peak.
        let peak_idx = cycles
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty")
            .0;
        assert!(peak_idx >= 1, "peak at index {peak_idx}");
        assert!(cycles[peak_idx] > cycles[0]);
        // Regime 2/3: runtime falls after the peak and flattens at the end.
        assert!(cycles[cycles.len() - 1] < cycles[peak_idx]);
        let tail_ratio = cycles[cycles.len() - 1] / cycles[cycles.len() - 2];
        assert!(tail_ratio < 1.05, "tail should saturate, ratio {tail_ratio}");
    }

    #[test]
    fn more_nonzeros_cost_more_cycles() {
        let config = MemoryConfig::default();
        let small = model_tiled_spmm(8000, 5000, &config);
        let large = model_tiled_spmm(8000, 50000, &config);
        assert!(large.cycles > small.cycles);
        assert!(large.nonempty_tiles > small.nonempty_tiles);
    }

    #[test]
    fn tile_grid_tracks_dimension() {
        let config = MemoryConfig::default();
        let e = model_tiled_spmm(1024, 10000, &config);
        assert_eq!(e.grid, 8);
        assert!(e.effectual_tile_pairs > 0.0);
        assert!(e.dram_bytes > 0.0);
    }

    #[test]
    fn comparison_computes_ratios() {
        let config = MemoryConfig::default();
        let analytic = model_tiled_spmm(2048, 10000, &config);
        let measured = MemoryCounters {
            dram_bytes: analytic.dram_bytes as u64 * 2,
            llb_peak_bytes: 1024,
            tiles_visited: 100,
            tiles_skipped: 40,
            tiles_executed: 60,
            spill_events: 0,
        };
        let cmp = compare_with_model(analytic, measured, analytic.cycles * 0.5);
        assert!((cmp.dram_ratio - 2.0).abs() < 0.01);
        assert!((cmp.cycle_ratio - 0.5).abs() < 1e-9);
        assert_eq!(cmp.measured.tiles_executed, 60);
    }
}
