//! Hand-scheduled SAM kernels used throughout the evaluation.
//!
//! Every kernel builds a dataflow graph out of `sam-primitives` blocks, runs
//! it on the `sam-sim` simulator, and returns the result tensor together with
//! the simulated cycle count. Kernels correspond to the algorithms studied in
//! the paper's Section 6:
//!
//! * [`vecmul`] — element-wise sparse vector multiplication in the six
//!   storage/acceleration configurations of Figure 13,
//! * [`spmv`] — sparse matrix-vector multiplication (Table 1's first row),
//! * [`spmm`] — SpM*SpM in the inner-product, linear-combination-of-rows
//!   (Gustavson, paper Figure 4) and outer-product (OuterSPACE, paper
//!   Figure 16) dataflows used by Figure 12,
//! * [`sddmm`] — fused co-iterating, fused locating and unfused SDDMM
//!   (Figure 11),
//! * [`identity`] — the matrix identity expression whose stream composition
//!   Figure 14 analyzes.

pub mod identity;
pub mod sddmm;
pub mod spmm;
pub mod spmv;
pub mod vecmul;

use sam_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The outcome of running one kernel on the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelResult {
    /// The computed result tensor (fully compressed storage).
    pub output: Tensor,
    /// Simulated cycles until the whole graph quiesced.
    pub cycles: u64,
    /// Number of primitive blocks in the simulated graph.
    pub blocks: usize,
}

/// Default cycle budget for kernel simulations; large enough for every
/// workload used in the evaluation harness.
pub(crate) const MAX_CYCLES: u64 = 200_000_000;
