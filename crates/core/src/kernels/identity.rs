//! The matrix identity expression `X(i,j) = B(i,j)` used by the Figure 14
//! stream-composition study.

use crate::kernels::{KernelResult, MAX_CYCLES};
use crate::wiring::{self, fork};
use sam_sim::Simulator;
use sam_streams::TokenStats;
use sam_tensor::level::Level;
use sam_tensor::{CooTensor, Tensor, TensorFormat};

/// Result of the identity kernel: the copied tensor, the cycle count, and the
/// token-kind breakdown of the outer (`Bi`) and inner (`Bj`) coordinate
/// streams, including idle slots — exactly the quantities plotted in
/// Figure 14.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentityResult {
    /// The kernel outcome (output tensor and cycles).
    pub kernel: KernelResult,
    /// Token statistics of the outer-level `Bi` coordinate stream.
    pub outer_stats: TokenStats,
    /// Token statistics of the inner-level `Bj` coordinate stream.
    pub inner_stats: TokenStats,
}

/// Copies a DCSR matrix through a SAM graph (two scanners, a value array and
/// three writers), recording the per-level stream statistics.
///
/// # Panics
///
/// Panics if `b` is not a matrix or the simulation fails.
pub fn identity(b: &CooTensor) -> IdentityResult {
    assert_eq!(b.order(), 2, "B must be a matrix");
    let (rows, cols) = (b.shape()[0], b.shape()[1]);
    let tb = Tensor::from_coo("B", b, TensorFormat::dcsr());
    let mut sim = Simulator::new();
    let rb = wiring::root(&mut sim, "B");
    let (bi_crd, bi_ref) = wiring::scan(&mut sim, "Bi", &tb, 0, rb);
    let (bj_crd, bj_ref) = wiring::scan(&mut sim, "Bj", &tb, 1, bi_ref);
    let [bj_out, bj_stats] = fork(&mut sim, "bj_fork", bj_crd);
    let b_vals = wiring::val_array(&mut sim, "B_vals", &tb, bj_ref);
    let xi_sink = wiring::write_level(&mut sim, "Xi", rows, bi_crd);
    let xj_sink = wiring::write_level(&mut sim, "Xj", cols, bj_out);
    let xv_sink = wiring::write_vals(&mut sim, "Xvals", b_vals);
    // A sink for the statistics copy of the inner stream.
    let stats_sink = wiring::write_level(&mut sim, "stats_sink", cols, bj_stats);
    let report = sim.run(MAX_CYCLES).expect("identity simulation");
    let _ = stats_sink;

    // The outer stream is the channel produced by the Bi scanner; the inner
    // stream is the Bj scanner's coordinate output (before the fork).
    let outer_stats = sim.channel_stats(bi_crd);
    let inner_stats = sim.channel_stats(bj_crd);

    let output = Tensor::from_parts(
        "X",
        vec![rows, cols],
        TensorFormat::dcsr(),
        vec![
            Level::Compressed(wiring::take_level(&xi_sink)),
            Level::Compressed(wiring::take_level(&xj_sink)),
        ],
        wiring::take_vals(&xv_sink),
    );
    IdentityResult {
        kernel: KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() },
        outer_stats,
        inner_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_tensor::synth;

    #[test]
    fn identity_preserves_the_matrix() {
        let b = synth::random_matrix_sparsity(30, 25, 0.9, 21);
        let result = identity(&b);
        let expect = Tensor::from_coo("B", &b, TensorFormat::dcsr());
        assert!(result.kernel.output.approx_eq(&expect));
    }

    #[test]
    fn outer_stream_is_mostly_idle() {
        // Matching the paper's observation: the outer scanner finishes early
        // and sits idle while the inner level streams its coordinates.
        let b = synth::random_matrix_sparsity(50, 50, 0.9, 22);
        let result = identity(&b);
        let outer = result.outer_stats;
        let idle_frac = outer.idle as f64 / outer.total() as f64;
        assert!(idle_frac > 0.4, "idle fraction {idle_frac}");
        // The inner stream's control overhead is dominated by stop tokens.
        assert!(result.inner_stats.stop >= result.inner_stats.done);
        assert_eq!(result.inner_stats.non_control as usize, result.kernel.output.nnz());
    }
}
