//! Sparse matrix - sparse matrix multiplication `X(i,j) = sum_k B(i,k)*C(k,j)`
//! in the three dataflow classes of the paper's Figure 12:
//!
//! * inner product (`i -> j -> k`), as built by SIGMA-style accelerators,
//! * linear combination of rows (`i -> k -> j`), Gustavson's algorithm and
//!   the paper's running example (Figure 4),
//! * outer product (`k -> i -> j`), the OuterSPACE dataflow (Figure 16).

use crate::kernels::{KernelResult, MAX_CYCLES};
use crate::wiring::{self, fork};
use sam_primitives::{AluOp, EmptyFiberPolicy};
use sam_sim::Simulator;
use sam_tensor::level::Level;
use sam_tensor::{CooTensor, Tensor, TensorFormat};

/// The SpM*SpM dataflow (index-variable iteration order) to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpmmDataflow {
    /// `i -> j -> k`: inner product.
    InnerProduct,
    /// `i -> k -> j`: linear combination of rows (Gustavson).
    LinearCombination,
    /// `k -> i -> j`: outer product.
    OuterProduct,
}

impl SpmmDataflow {
    /// Human-readable name used in the Figure 12 output.
    pub fn label(&self) -> &'static str {
        match self {
            SpmmDataflow::InnerProduct => "inner product",
            SpmmDataflow::LinearCombination => "linear combination of rows",
            SpmmDataflow::OuterProduct => "outer product",
        }
    }

    /// Maps each of the six `ijk` permutations of Figure 12 to its dataflow
    /// class and whether the computation runs on transposed operands
    /// (`X^T = C^T B^T`).
    pub fn from_order(order: &str) -> Option<(SpmmDataflow, bool)> {
        match order {
            "ijk" => Some((SpmmDataflow::InnerProduct, false)),
            "jik" => Some((SpmmDataflow::InnerProduct, true)),
            "ikj" => Some((SpmmDataflow::LinearCombination, false)),
            "jki" => Some((SpmmDataflow::LinearCombination, true)),
            "kij" => Some((SpmmDataflow::OuterProduct, false)),
            "kji" => Some((SpmmDataflow::OuterProduct, true)),
            _ => None,
        }
    }
}

/// Runs SpM*SpM on COO operands `B` (I x K) and `C` (K x J) with the given
/// dataflow, returning the result as a DCSR tensor plus the simulated cycles.
///
/// # Panics
///
/// Panics if the operand shapes do not agree or the simulation fails.
pub fn spmm(b: &CooTensor, c: &CooTensor, dataflow: SpmmDataflow) -> KernelResult {
    assert_eq!(b.order(), 2, "B must be a matrix");
    assert_eq!(c.order(), 2, "C must be a matrix");
    assert_eq!(b.shape()[1], c.shape()[0], "inner dimensions must agree");
    match dataflow {
        SpmmDataflow::LinearCombination => spmm_gustavson(b, c),
        SpmmDataflow::InnerProduct => spmm_inner(b, c),
        SpmmDataflow::OuterProduct => spmm_outer(b, c),
    }
}

/// Builds the DCSR result tensor from the two written levels and values.
fn assemble_result(
    rows: usize,
    cols: usize,
    xi: sam_tensor::level::CompressedLevel,
    xj: sam_tensor::level::CompressedLevel,
    vals: Vec<f64>,
) -> Tensor {
    Tensor::from_parts(
        "X",
        vec![rows, cols],
        TensorFormat::dcsr(),
        vec![Level::Compressed(xi), Level::Compressed(xj)],
        vals,
    )
}

/// The linear-combination-of-rows graph of paper Figure 4.
fn spmm_gustavson(b: &CooTensor, c: &CooTensor) -> KernelResult {
    let (rows, cols) = (b.shape()[0], c.shape()[1]);
    let tb = Tensor::from_coo("B", b, TensorFormat::dcsr());
    let tc = Tensor::from_coo("C", c, TensorFormat::dcsr());
    let mut sim = Simulator::new();

    let rb = wiring::root(&mut sim, "B");
    let (bi_crd, bi_ref) = wiring::scan(&mut sim, "Bi", &tb, 0, rb);
    let [bi_rep, bi_out] = fork(&mut sim, "bi_fork", bi_crd);
    let (bk_crd, bk_ref) = wiring::scan(&mut sim, "Bk", &tb, 1, bi_ref);

    let rc = wiring::root(&mut sim, "C");
    let rep_ci = wiring::repeat(&mut sim, "rep_Ci", bi_rep, rc);
    let (ck_crd, ck_ref) = wiring::scan(&mut sim, "Ck", &tc, 0, rep_ci);

    let (_k_crd, k_refs) = wiring::intersect(&mut sim, "int_k", [bk_crd, ck_crd], [bk_ref, ck_ref]);
    let (cj_crd, cj_ref) = wiring::scan(&mut sim, "Cj", &tc, 1, k_refs[1]);
    let [cj_rep, cj_red] = fork(&mut sim, "cj_fork", cj_crd);
    let rep_bj = wiring::repeat(&mut sim, "rep_Bj", cj_rep, k_refs[0]);

    let b_vals = wiring::val_array(&mut sim, "B_vals", &tb, rep_bj);
    let c_vals = wiring::val_array(&mut sim, "C_vals", &tc, cj_ref);
    let prod = wiring::alu(&mut sim, "mul", AluOp::Mul, b_vals, c_vals);
    let (xj_crd, x_vals) = wiring::reduce_vector(&mut sim, "reduce_k", cj_red, prod, EmptyFiberPolicy::Drop);
    let (xi_out, xj_out) = wiring::crd_drop(&mut sim, "drop_i", bi_out, xj_crd);

    let xi_sink = wiring::write_level(&mut sim, "Xi", rows, xi_out);
    let xj_sink = wiring::write_level(&mut sim, "Xj", cols, xj_out);
    let xv_sink = wiring::write_vals(&mut sim, "Xvals", x_vals);
    let report = sim.run(MAX_CYCLES).expect("Gustavson SpM*SpM simulation");
    let output = assemble_result(
        rows,
        cols,
        wiring::take_level(&xi_sink),
        wiring::take_level(&xj_sink),
        wiring::take_vals(&xv_sink),
    );
    KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() }
}

/// The inner-product graph (`i -> j -> k`): every (i, j) pair intersects B's
/// row with C's column. Empty intersections produce explicit zeros.
fn spmm_inner(b: &CooTensor, c: &CooTensor) -> KernelResult {
    let (rows, cols) = (b.shape()[0], c.shape()[1]);
    let tb = Tensor::from_coo("B", b, TensorFormat::dcsr());
    // C is iterated j -> k, i.e. by columns: store it transposed.
    let tc = Tensor::from_coo("C", c, TensorFormat::dcsc());
    let mut sim = Simulator::new();

    let rb = wiring::root(&mut sim, "B");
    let (bi_crd, bi_ref) = wiring::scan(&mut sim, "Bi", &tb, 0, rb);
    let [bi_rep, bi_out] = fork(&mut sim, "bi_fork", bi_crd);

    let rc = wiring::root(&mut sim, "C");
    let rep_cj_root = wiring::repeat(&mut sim, "rep_Cj", bi_rep, rc);
    let (cj_crd, cj_ref) = wiring::scan(&mut sim, "Cj", &tc, 0, rep_cj_root);
    let [cj_rep, cj_out] = fork(&mut sim, "cj_fork", cj_crd);

    let rep_bk = wiring::repeat(&mut sim, "rep_Bk", cj_rep, bi_ref);
    let (bk_crd, bk_ref) = wiring::scan(&mut sim, "Bk", &tb, 1, rep_bk);
    let (ck_crd, ck_ref) = wiring::scan(&mut sim, "Ck", &tc, 1, cj_ref);
    let (_k_crd, k_refs) = wiring::intersect(&mut sim, "int_k", [bk_crd, ck_crd], [bk_ref, ck_ref]);

    let b_vals = wiring::val_array(&mut sim, "B_vals", &tb, k_refs[0]);
    let c_vals = wiring::val_array(&mut sim, "C_vals", &tc, k_refs[1]);
    let prod = wiring::alu(&mut sim, "mul", AluOp::Mul, b_vals, c_vals);
    let x_vals = wiring::reduce_scalar(&mut sim, "reduce_k", prod, EmptyFiberPolicy::ExplicitZero);

    let xi_sink = wiring::write_level(&mut sim, "Xi", rows, bi_out);
    let xj_sink = wiring::write_level(&mut sim, "Xj", cols, cj_out);
    let xv_sink = wiring::write_vals(&mut sim, "Xvals", x_vals);
    let report = sim.run(MAX_CYCLES).expect("inner-product SpM*SpM simulation");
    let output = assemble_result(
        rows,
        cols,
        wiring::take_level(&xi_sink),
        wiring::take_level(&xj_sink),
        wiring::take_vals(&xv_sink),
    );
    KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() }
}

/// The outer-product graph (`k -> i -> j`) with a matrix accumulator, the
/// dataflow of OuterSPACE (paper Figure 16 plus its merge phase).
fn spmm_outer(b: &CooTensor, c: &CooTensor) -> KernelResult {
    let (rows, cols) = (b.shape()[0], c.shape()[1]);
    // B is iterated k -> i, i.e. by columns: store it transposed.
    let tb = Tensor::from_coo("B", b, TensorFormat::dcsc());
    let tc = Tensor::from_coo("C", c, TensorFormat::dcsr());
    let mut sim = Simulator::new();

    let rb = wiring::root(&mut sim, "B");
    let (bk_crd, bk_ref) = wiring::scan(&mut sim, "Bk", &tb, 0, rb);
    let rc = wiring::root(&mut sim, "C");
    let (ck_crd, ck_ref) = wiring::scan(&mut sim, "Ck", &tc, 0, rc);
    let (_k_crd, k_refs) = wiring::intersect(&mut sim, "int_k", [bk_crd, ck_crd], [bk_ref, ck_ref]);

    let (bi_crd, bi_ref) = wiring::scan(&mut sim, "Bi", &tb, 1, k_refs[0]);
    let [bi_rep, bi_red] = fork(&mut sim, "bi_fork", bi_crd);
    let rep_cj = wiring::repeat(&mut sim, "rep_Cj", bi_rep, k_refs[1]);
    let (cj_crd, cj_ref) = wiring::scan(&mut sim, "Cj", &tc, 1, rep_cj);
    let [cj_rep, cj_red] = fork(&mut sim, "cj_fork", cj_crd);
    let rep_bval = wiring::repeat(&mut sim, "rep_Bval", cj_rep, bi_ref);

    let b_vals = wiring::val_array(&mut sim, "B_vals", &tb, rep_bval);
    let c_vals = wiring::val_array(&mut sim, "C_vals", &tc, cj_ref);
    let prod = wiring::alu(&mut sim, "mul", AluOp::Mul, b_vals, c_vals);
    let (x_crds, x_vals) =
        wiring::reduce_matrix(&mut sim, "reduce_k", [bi_red, cj_red], prod, EmptyFiberPolicy::Drop);

    let xi_sink = wiring::write_level(&mut sim, "Xi", rows, x_crds[0]);
    let xj_sink = wiring::write_level(&mut sim, "Xj", cols, x_crds[1]);
    let xv_sink = wiring::write_vals(&mut sim, "Xvals", x_vals);
    let report = sim.run(MAX_CYCLES).expect("outer-product SpM*SpM simulation");
    let output = assemble_result(
        rows,
        cols,
        wiring::take_level(&xi_sink),
        wiring::take_level(&xj_sink),
        wiring::take_vals(&xv_sink),
    );
    KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() }
}

/// Runs one of the six `ijk` orders of Figure 12 by mapping it to a dataflow
/// class, transposing operands for the mirrored orders.
pub fn spmm_order(b: &CooTensor, c: &CooTensor, order: &str) -> KernelResult {
    let (dataflow, transposed) =
        SpmmDataflow::from_order(order).unwrap_or_else(|| panic!("unknown iteration order `{order}`"));
    if !transposed {
        return spmm(b, c, dataflow);
    }
    // X^T = C^T * B^T.
    let transpose = |t: &CooTensor, name: &str| {
        let mut out = CooTensor::new(vec![t.shape()[1], t.shape()[0]]);
        for (p, v) in t.entries() {
            out.push(&[p[1], p[0]], *v).expect("in bounds");
        }
        let _ = name;
        out
    };
    let ct = transpose(c, "Ct");
    let bt = transpose(b, "Bt");
    let mut result = spmm(&ct, &bt, dataflow);
    // Transpose the result back.
    let mut coo = CooTensor::new(vec![b.shape()[0], c.shape()[1]]);
    for (p, v) in result.output.points() {
        coo.push(&[p[1], p[0]], v).expect("in bounds");
    }
    result.output = Tensor::from_coo("X", &coo, TensorFormat::dcsr());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_tensor::expr::table1;
    use sam_tensor::reference::Environment;
    use sam_tensor::synth;

    fn oracle(b: &CooTensor, c: &CooTensor) -> sam_tensor::DenseTensor {
        let mut env = Environment::new();
        env.insert("B", Tensor::from_coo("B", b, TensorFormat::dense(2)).to_dense());
        env.insert("C", Tensor::from_coo("C", c, TensorFormat::dense(2)).to_dense());
        env.bind_dims(&table1::spmm(), &[]);
        env.evaluate(&table1::spmm()).unwrap()
    }

    #[test]
    fn all_dataflows_match_reference() {
        let b = synth::random_matrix_sparsity(24, 18, 0.85, 11);
        let c = synth::random_matrix_sparsity(18, 20, 0.85, 12);
        let expect = oracle(&b, &c);
        for dataflow in
            [SpmmDataflow::LinearCombination, SpmmDataflow::InnerProduct, SpmmDataflow::OuterProduct]
        {
            let result = spmm(&b, &c, dataflow);
            assert!(
                result.output.to_dense().approx_eq(&expect),
                "{} disagreed with the reference",
                dataflow.label()
            );
        }
    }

    #[test]
    fn transposed_orders_match_reference() {
        let b = synth::random_matrix_sparsity(15, 12, 0.8, 3);
        let c = synth::random_matrix_sparsity(12, 10, 0.8, 4);
        let expect = oracle(&b, &c);
        for order in ["ijk", "jik", "ikj", "jki", "kij", "kji"] {
            let result = spmm_order(&b, &c, order);
            assert!(result.output.to_dense().approx_eq(&expect), "order {order} disagreed");
        }
    }

    #[test]
    fn gustavson_beats_inner_product_on_sparse_inputs() {
        let b = synth::random_matrix_sparsity(60, 40, 0.95, 5);
        let c = synth::random_matrix_sparsity(40, 60, 0.95, 6);
        let rows = spmm(&b, &c, SpmmDataflow::LinearCombination);
        let inner = spmm(&b, &c, SpmmDataflow::InnerProduct);
        assert!(
            rows.cycles < inner.cycles,
            "Gustavson ({}) should beat inner product ({})",
            rows.cycles,
            inner.cycles
        );
    }

    #[test]
    fn order_mapping() {
        assert_eq!(SpmmDataflow::from_order("ikj"), Some((SpmmDataflow::LinearCombination, false)));
        assert_eq!(SpmmDataflow::from_order("kji"), Some((SpmmDataflow::OuterProduct, true)));
        assert_eq!(SpmmDataflow::from_order("zzz"), None);
    }
}
