//! Element-wise sparse vector multiplication `x(i) = b(i) * c(i)` in the six
//! configurations of the paper's Figure 13.

use crate::kernels::{KernelResult, MAX_CYCLES};
use crate::wiring;
use sam_primitives::bitvector::{
    bit_result_sink, BitTreeVecMul, BitvectorIntersecter, BitvectorScanner, BitvectorVecMul,
};
use sam_primitives::{root_stream, AluOp};
use sam_sim::Simulator;
use sam_tensor::level::BitvectorLevel;
use sam_tensor::{CooTensor, LevelFormat, Tensor, TensorFormat};
use std::sync::Arc;

/// The vector storage / acceleration configuration (the Figure 13 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VecFormat {
    /// One uncompressed (dense) level.
    Dense,
    /// One compressed coordinate level.
    Crd,
    /// One compressed coordinate level with coordinate skipping.
    CrdSkip,
    /// Two compressed coordinate levels (the vector split into chunks).
    CrdSplit {
        /// Number of chunks the dimension is divided into.
        split: usize,
    },
    /// One pseudo-dense bitvector level.
    Bv {
        /// Bits per bitvector word.
        width: u8,
    },
    /// Two bitvector levels (a bit-tree).
    BvSplit {
        /// Bits per bitvector word.
        width: u8,
    },
}

impl VecFormat {
    /// The label used in the Figure 13 plots.
    pub fn label(&self) -> &'static str {
        match self {
            VecFormat::Dense => "Dense",
            VecFormat::Crd => "Crd",
            VecFormat::CrdSkip => "Crd w/ skip",
            VecFormat::CrdSplit { .. } => "Crd w/ split",
            VecFormat::Bv { .. } => "BV",
            VecFormat::BvSplit { .. } => "BV w/ split",
        }
    }

    /// The six configurations studied in Figure 13, with the paper's
    /// parameters (split factor 64, 64-bit words).
    pub fn figure13_set() -> Vec<VecFormat> {
        vec![
            VecFormat::Crd,
            VecFormat::Dense,
            VecFormat::CrdSkip,
            VecFormat::CrdSplit { split: 64 },
            VecFormat::BvSplit { width: 64 },
            VecFormat::Bv { width: 64 },
        ]
    }
}

/// Runs element-wise vector multiplication of two COO vectors of dimension
/// `dim` under the given configuration.
///
/// # Panics
///
/// Panics if the inputs are not vectors of the stated dimension or the
/// simulation does not complete.
pub fn vec_elem_mul(b: &CooTensor, c: &CooTensor, dim: usize, format: VecFormat) -> KernelResult {
    assert_eq!(b.shape(), &[dim], "b must be a vector of dimension {dim}");
    assert_eq!(c.shape(), &[dim], "c must be a vector of dimension {dim}");
    match format {
        VecFormat::Dense => flat_kernel(b, c, dim, TensorFormat::dense_vec(), false),
        VecFormat::Crd => flat_kernel(b, c, dim, TensorFormat::sparse_vec(), false),
        VecFormat::CrdSkip => flat_kernel(b, c, dim, TensorFormat::sparse_vec(), true),
        VecFormat::CrdSplit { split } => split_kernel(b, c, dim, split),
        VecFormat::Bv { width } => bitvector_kernel(b, c, dim, width),
        VecFormat::BvSplit { width } => bittree_kernel(b, c, dim, width),
    }
}

/// Single-level kernel: scan both operands, intersect, load values, multiply,
/// write the result (with optional coordinate skipping).
fn flat_kernel(b: &CooTensor, c: &CooTensor, dim: usize, fmt: TensorFormat, skip: bool) -> KernelResult {
    let tb = Tensor::from_coo("b", b, fmt.clone());
    let tc = Tensor::from_coo("c", c, fmt);
    let mut sim = Simulator::new();
    let rb = wiring::root(&mut sim, "b");
    let rc = wiring::root(&mut sim, "c");
    let (int_crd, int_ref) = if skip {
        let (b_crd, b_ref, b_skip) = wiring::scan_with_skip(&mut sim, "bi", &tb, 0, rb);
        let (c_crd, c_ref, c_skip) = wiring::scan_with_skip(&mut sim, "ci", &tc, 0, rc);
        wiring::intersect_with_skip(&mut sim, "int_i", [b_crd, c_crd], [b_ref, c_ref], [b_skip, c_skip])
    } else {
        let (b_crd, b_ref) = wiring::scan(&mut sim, "bi", &tb, 0, rb);
        let (c_crd, c_ref) = wiring::scan(&mut sim, "ci", &tc, 0, rc);
        wiring::intersect(&mut sim, "int_i", [b_crd, c_crd], [b_ref, c_ref])
    };
    let bv = wiring::val_array(&mut sim, "b_vals", &tb, int_ref[0]);
    let cv = wiring::val_array(&mut sim, "c_vals", &tc, int_ref[1]);
    let prod = wiring::alu(&mut sim, "mul", AluOp::Mul, bv, cv);
    let xi_sink = wiring::write_level(&mut sim, "xi", dim, int_crd);
    let xv_sink = wiring::write_vals(&mut sim, "xvals", prod);
    let report = sim.run(MAX_CYCLES).expect("vector multiply simulation");
    let level = wiring::take_level(&xi_sink);
    let vals = wiring::take_vals(&xv_sink);
    let output = Tensor::from_parts(
        "x",
        vec![dim],
        TensorFormat::sparse_vec(),
        vec![sam_tensor::level::Level::Compressed(level)],
        vals,
    );
    KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() }
}

/// Two-level (split) kernel: the vector is reshaped into `split` chunks and
/// intersected hierarchically so whole chunks with no overlap are skipped.
fn split_kernel(b: &CooTensor, c: &CooTensor, dim: usize, split: usize) -> KernelResult {
    assert!(split > 0, "split factor must be positive");
    // The last chunk may be partially filled when the split does not divide
    // the dimension evenly (e.g. the paper's 2000-element vectors with a
    // split factor of 64).
    let chunk = dim.div_ceil(split);
    let reshape = |t: &CooTensor, name: &str| {
        let mut coo = CooTensor::new(vec![split, chunk]);
        for (p, v) in t.entries() {
            coo.push(&[p[0] / chunk as u32, p[0] % chunk as u32], *v).expect("in bounds");
        }
        Tensor::from_coo(name, &coo, TensorFormat::csf(2))
    };
    let tb = reshape(b, "b");
    let tc = reshape(c, "c");
    let mut sim = Simulator::new();
    let rb = wiring::root(&mut sim, "b");
    let rc = wiring::root(&mut sim, "c");
    let (b0_crd, b0_ref) = wiring::scan(&mut sim, "b0", &tb, 0, rb);
    let (c0_crd, c0_ref) = wiring::scan(&mut sim, "c0", &tc, 0, rc);
    let (o_crd, o_ref) = wiring::intersect(&mut sim, "int_outer", [b0_crd, c0_crd], [b0_ref, c0_ref]);
    let (b1_crd, b1_ref) = wiring::scan(&mut sim, "b1", &tb, 1, o_ref[0]);
    let (c1_crd, c1_ref) = wiring::scan(&mut sim, "c1", &tc, 1, o_ref[1]);
    let (i_crd, i_ref) = wiring::intersect(&mut sim, "int_inner", [b1_crd, c1_crd], [b1_ref, c1_ref]);
    let bv = wiring::val_array(&mut sim, "b_vals", &tb, i_ref[0]);
    let cv = wiring::val_array(&mut sim, "c_vals", &tc, i_ref[1]);
    let prod = wiring::alu(&mut sim, "mul", AluOp::Mul, bv, cv);
    // Drop outer chunks whose inner intersection came up empty.
    let (x0_crd, x1_crd) = wiring::crd_drop(&mut sim, "drop", o_crd, i_crd);
    let x0_sink = wiring::write_level(&mut sim, "x0", split, x0_crd);
    let x1_sink = wiring::write_level(&mut sim, "x1", chunk, x1_crd);
    let xv_sink = wiring::write_vals(&mut sim, "xvals", prod);
    let report = sim.run(MAX_CYCLES).expect("split vector multiply simulation");
    let l0 = wiring::take_level(&x0_sink);
    let l1 = wiring::take_level(&x1_sink);
    let vals = wiring::take_vals(&xv_sink);
    // Flatten the two-level result back into a vector.
    let two_level = Tensor::from_parts(
        "x2",
        vec![split, chunk],
        TensorFormat::csf(2),
        vec![sam_tensor::level::Level::Compressed(l0), sam_tensor::level::Level::Compressed(l1)],
        vals,
    );
    let mut flat = CooTensor::new(vec![dim]);
    for (p, v) in two_level.points() {
        flat.push(&[p[0] * chunk as u32 + p[1]], v).expect("in bounds");
    }
    let output = Tensor::from_coo("x", &flat, TensorFormat::sparse_vec());
    KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() }
}

/// A bitvector level plus its values, shared with simulator blocks.
type BvOperand = (Arc<BitvectorLevel>, Arc<Vec<f64>>);

fn bitvector_operands(b: &CooTensor, c: &CooTensor, width: u8) -> (BvOperand, BvOperand) {
    let fmt = TensorFormat::new(vec![LevelFormat::Bitvector { word_width: width }]);
    let tb = Tensor::from_coo("b", b, fmt.clone());
    let tc = Tensor::from_coo("c", c, fmt);
    let lb = match tb.level(0) {
        sam_tensor::level::Level::Bitvector(l) => Arc::new(l.clone()),
        _ => unreachable!("bitvector format"),
    };
    let lc = match tc.level(0) {
        sam_tensor::level::Level::Bitvector(l) => Arc::new(l.clone()),
        _ => unreachable!("bitvector format"),
    };
    ((lb, Arc::new(tb.vals().to_vec())), (lc, Arc::new(tc.vals().to_vec())))
}

/// Flat bitvector kernel: one word of each operand is scanned, intersected
/// and multiplied (all lanes in parallel) per cycle.
fn bitvector_kernel(b: &CooTensor, c: &CooTensor, dim: usize, width: u8) -> KernelResult {
    let ((lb, vb), (lc, vc)) = bitvector_operands(b, c, width);
    let mut sim = Simulator::new();
    let rb = sim.add_channel("b_root");
    let rc = sim.add_channel("c_root");
    sim.preload(rb, root_stream());
    sim.preload(rc, root_stream());
    let b_bits = sim.add_channel("b_bits");
    let b_refs = sim.add_channel("b_refs");
    let c_bits = sim.add_channel("c_bits");
    let c_refs = sim.add_channel("c_refs");
    let inter = sim.add_channel("intersected");
    let pairs = sim.add_channel("pairs");
    let sink = bit_result_sink();
    sim.add_block(Box::new(BitvectorScanner::new("b_scan", lb.clone(), rb, b_bits, b_refs)));
    sim.add_block(Box::new(BitvectorScanner::new("c_scan", lc.clone(), rc, c_bits, c_refs)));
    sim.add_block(Box::new(BitvectorIntersecter::new(
        "bv_int",
        [b_bits, c_bits],
        [b_refs, c_refs],
        inter,
        pairs,
    )));
    sim.add_block(Box::new(BitvectorVecMul::new("bv_mul", lb, lc, vb, vc, inter, sink.clone())));
    let report = sim.run(MAX_CYCLES).expect("bitvector multiply simulation");
    let output = result_from_pairs(&sink.lock().expect("sink").clone(), dim);
    KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() }
}

/// Two-level bit-tree kernel (the paper's "BV w/ split").
fn bittree_kernel(b: &CooTensor, c: &CooTensor, dim: usize, width: u8) -> KernelResult {
    let ((lb, vb), (lc, vc)) = bitvector_operands(b, c, width);
    let sink = bit_result_sink();
    let mut sim = Simulator::new();
    let progress = sim.add_channel("progress");
    sim.add_block(Box::new(BitTreeVecMul::new("bt_mul", lb, lc, vb, vc, progress, sink.clone())));
    let report = sim.run(MAX_CYCLES).expect("bit-tree multiply simulation");
    let output = result_from_pairs(&sink.lock().expect("sink").clone(), dim);
    KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() }
}

fn result_from_pairs(pairs: &[(u32, f64)], dim: usize) -> Tensor {
    let mut coo = CooTensor::new(vec![dim]);
    for (c, v) in pairs {
        coo.push(&[*c], *v).expect("in bounds");
    }
    Tensor::from_coo("x", &coo, TensorFormat::sparse_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_tensor::expr::table1;
    use sam_tensor::reference::Environment;
    use sam_tensor::synth;

    fn oracle(b: &CooTensor, c: &CooTensor, dim: usize) -> sam_tensor::DenseTensor {
        let mut env = Environment::new();
        env.insert("b", Tensor::from_coo("b", b, TensorFormat::dense_vec()).to_dense());
        env.insert("c", Tensor::from_coo("c", c, TensorFormat::dense_vec()).to_dense());
        env.set_dim('i', dim);
        env.evaluate(&table1::vec_elem_mul()).unwrap()
    }

    #[test]
    fn all_formats_agree_with_oracle() {
        let dim = 256;
        let b = synth::random_vector(dim, 50, 1);
        let c = synth::random_vector(dim, 60, 2);
        let expect = oracle(&b, &c, dim);
        for fmt in VecFormat::figure13_set() {
            let result = vec_elem_mul(&b, &c, dim, fmt);
            assert!(
                result.output.to_dense().approx_eq(&expect),
                "format {} disagreed with the reference",
                fmt.label()
            );
            assert!(result.cycles > 0);
        }
    }

    #[test]
    fn skipping_helps_on_runs() {
        let dim = 2048;
        let (b, c) = synth::runs_vector_pair(dim, 400, 50, 3);
        let plain = vec_elem_mul(&b, &c, dim, VecFormat::Crd);
        let skipped = vec_elem_mul(&b, &c, dim, VecFormat::CrdSkip);
        assert!(skipped.cycles < plain.cycles, "skip {} should beat plain {}", skipped.cycles, plain.cycles);
    }

    #[test]
    fn dense_costs_track_dimension() {
        let dim = 512;
        let b = synth::random_vector(dim, 10, 1);
        let c = synth::random_vector(dim, 10, 2);
        let dense = vec_elem_mul(&b, &c, dim, VecFormat::Dense);
        let sparse = vec_elem_mul(&b, &c, dim, VecFormat::Crd);
        assert!(dense.cycles > sparse.cycles);
        assert!(dense.cycles as usize >= dim);
    }

    #[test]
    fn bitvector_cycles_are_word_bound() {
        let dim = 2048;
        let b = synth::random_vector(dim, 400, 1);
        let c = synth::random_vector(dim, 400, 2);
        let bv = vec_elem_mul(&b, &c, dim, VecFormat::Bv { width: 64 });
        // 32 words plus pipeline overhead.
        assert!(bv.cycles < 200, "cycles = {}", bv.cycles);
    }
}
