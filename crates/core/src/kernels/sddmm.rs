//! Sampled dense-dense matrix multiplication
//! `X(i,j) = sum_k B(i,j) * C(i,k) * D(j,k)` (paper Figure 11).
//!
//! Three algorithm variants are provided:
//!
//! * **fused, co-iterating** — the sparse matrix B drives iteration and the
//!   dense factors' outer dimensions are co-iterated (intersected) against
//!   B's coordinates;
//! * **fused, locating** — B's coordinates are located directly into the
//!   dense factors (Section 4.2), skipping the dense outer scans;
//! * **unfused** — the dense product `T = C * D^T` is materialized first and
//!   then sampled by B, the factorized form the paper argues against.

use crate::kernels::spmm::{spmm, SpmmDataflow};
use crate::kernels::{KernelResult, MAX_CYCLES};
use crate::wiring::{self, fork};
use sam_primitives::{AluOp, EmptyFiberPolicy};
use sam_sim::Simulator;
use sam_tensor::level::Level;
use sam_tensor::{CooTensor, Tensor, TensorFormat};

/// The SDDMM algorithm variant (the Figure 11 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SddmmVariant {
    /// Fused with dense co-iteration on i and j.
    FusedCoiteration,
    /// Fused with locate blocks on i and j.
    FusedLocating,
    /// Unfused: dense matrix multiply followed by sampling.
    Unfused,
}

impl SddmmVariant {
    /// The label used in the Figure 11 plot.
    pub fn label(&self) -> &'static str {
        match self {
            SddmmVariant::FusedCoiteration => "Fused coiteration",
            SddmmVariant::FusedLocating => "Fused locating",
            SddmmVariant::Unfused => "Unfused",
        }
    }
}

/// Runs SDDMM with sparse `B` (I x J) and dense `C` (I x K), `D` (J x K).
///
/// # Panics
///
/// Panics on inconsistent shapes or simulation failure.
pub fn sddmm(b: &CooTensor, c: &CooTensor, d: &CooTensor, variant: SddmmVariant) -> KernelResult {
    assert_eq!(b.order(), 2, "B must be a matrix");
    assert_eq!(c.order(), 2, "C must be a matrix");
    assert_eq!(d.order(), 2, "D must be a matrix");
    assert_eq!(b.shape()[0], c.shape()[0], "B and C must agree on i");
    assert_eq!(b.shape()[1], d.shape()[0], "B and D must agree on j");
    assert_eq!(c.shape()[1], d.shape()[1], "C and D must agree on k");
    match variant {
        SddmmVariant::FusedLocating => fused_locating(b, c, d),
        SddmmVariant::FusedCoiteration => fused_coiteration(b, c, d),
        SddmmVariant::Unfused => unfused(b, c, d),
    }
}

fn assemble(
    rows: usize,
    cols: usize,
    xi: sam_tensor::level::CompressedLevel,
    xj: sam_tensor::level::CompressedLevel,
    vals: Vec<f64>,
) -> Tensor {
    Tensor::from_parts(
        "X",
        vec![rows, cols],
        TensorFormat::dcsr(),
        vec![Level::Compressed(xi), Level::Compressed(xj)],
        vals,
    )
}

/// Shared tail of both fused variants: given per-(i,j) fiber references into
/// C's and D's k levels, compute the inner product over k, scale by B's
/// values, and write the result.
#[allow(clippy::too_many_arguments)]
fn fused_tail(
    sim: &mut Simulator,
    tb: &Tensor,
    tc: &Tensor,
    td: &Tensor,
    c_kfiber_ref: sam_sim::ChannelId,
    d_kfiber_ref: sam_sim::ChannelId,
    b_val_ref: sam_sim::ChannelId,
    xi_crd: sam_sim::ChannelId,
    xj_crd: sam_sim::ChannelId,
) -> (
    sam_primitives::writer::LevelWriterSink,
    sam_primitives::writer::LevelWriterSink,
    sam_primitives::writer::ValWriterSink,
) {
    let (ck_crd, ck_ref) = wiring::scan(sim, "Ck", tc, 1, c_kfiber_ref);
    let (dk_crd, dk_ref) = wiring::scan(sim, "Dk", td, 1, d_kfiber_ref);
    let (_k_crd, k_refs) = wiring::intersect(sim, "int_k", [ck_crd, dk_crd], [ck_ref, dk_ref]);
    let c_vals = wiring::val_array(sim, "C_vals", tc, k_refs[0]);
    let d_vals = wiring::val_array(sim, "D_vals", td, k_refs[1]);
    let prod_cd = wiring::alu(sim, "mul_cd", AluOp::Mul, c_vals, d_vals);
    let s = wiring::reduce_scalar(sim, "reduce_k", prod_cd, EmptyFiberPolicy::ExplicitZero);
    let b_vals = wiring::val_array(sim, "B_vals", tb, b_val_ref);
    let x_vals = wiring::alu(sim, "mul_b", AluOp::Mul, b_vals, s);
    let xi_sink = wiring::write_level(sim, "Xi", tb.shape()[0], xi_crd);
    let xj_sink = wiring::write_level(sim, "Xj", tb.shape()[1], xj_crd);
    let xv_sink = wiring::write_vals(sim, "Xvals", x_vals);
    (xi_sink, xj_sink, xv_sink)
}

/// Fused SDDMM where B's coordinates are located into the dense factors.
fn fused_locating(b: &CooTensor, c: &CooTensor, d: &CooTensor) -> KernelResult {
    let (rows, cols) = (b.shape()[0], b.shape()[1]);
    let tb = Tensor::from_coo("B", b, TensorFormat::dcsr());
    let tc = Tensor::from_coo("C", c, TensorFormat::dense(2));
    let td = Tensor::from_coo("D", d, TensorFormat::dense(2));
    let mut sim = Simulator::new();

    let rb = wiring::root(&mut sim, "B");
    let (bi_crd, bi_ref) = wiring::scan(&mut sim, "Bi", &tb, 0, rb);
    let [bi_out, bi_loc, bi_rep_c, bi_rep_d] = fork(&mut sim, "bi_fork", bi_crd);
    let (bj_crd, bj_ref) = wiring::scan(&mut sim, "Bj", &tb, 1, bi_ref);
    let [bj_out, bj_loc, bj_rep_d, bj_rep_ci] = fork(&mut sim, "bj_fork", bj_crd);

    // Locate each B row coordinate into C's dense i level.
    let rc = wiring::root(&mut sim, "C");
    let rc_per_i = wiring::repeat(&mut sim, "rep_Croot", bi_rep_c, rc);
    let (_ci_crd, _ci_pass, c_i_ref) = wiring::locate(&mut sim, "loc_Ci", &tc, 0, bi_loc, rc_per_i);
    // Broadcast that fiber reference over the row's column coordinates.
    let c_i_per_j = wiring::repeat(&mut sim, "rep_Ci", bj_rep_ci, c_i_ref);

    // Locate each B column coordinate into D's dense j level.
    let rd = wiring::root(&mut sim, "D");
    let rd_per_i = wiring::repeat(&mut sim, "rep_Droot_i", bi_rep_d, rd);
    let rd_per_j = wiring::repeat(&mut sim, "rep_Droot_j", bj_rep_d, rd_per_i);
    let (_dj_crd, _dj_pass, d_j_ref) = wiring::locate(&mut sim, "loc_Dj", &td, 0, bj_loc, rd_per_j);

    let (xi_sink, xj_sink, xv_sink) =
        fused_tail(&mut sim, &tb, &tc, &td, c_i_per_j, d_j_ref, bj_ref, bi_out, bj_out);
    let report = sim.run(MAX_CYCLES).expect("fused locating SDDMM simulation");
    let output = assemble(
        rows,
        cols,
        wiring::take_level(&xi_sink),
        wiring::take_level(&xj_sink),
        wiring::take_vals(&xv_sink),
    );
    KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() }
}

/// Fused SDDMM where the dense outer dimensions are co-iterated against B.
fn fused_coiteration(b: &CooTensor, c: &CooTensor, d: &CooTensor) -> KernelResult {
    let (rows, cols) = (b.shape()[0], b.shape()[1]);
    let tb = Tensor::from_coo("B", b, TensorFormat::dcsr());
    let tc = Tensor::from_coo("C", c, TensorFormat::dense(2));
    let td = Tensor::from_coo("D", d, TensorFormat::dense(2));
    let mut sim = Simulator::new();

    let rb = wiring::root(&mut sim, "B");
    let rc = wiring::root(&mut sim, "C");
    let rd = wiring::root(&mut sim, "D");

    // Co-iterate B's i coordinates with C's dense i level.
    let (bi_crd, bi_ref) = wiring::scan(&mut sim, "Bi", &tb, 0, rb);
    let (ci_crd, ci_ref) = wiring::scan(&mut sim, "Ci", &tc, 0, rc);
    let (i_crd, i_refs) = wiring::intersect(&mut sim, "int_i", [bi_crd, ci_crd], [bi_ref, ci_ref]);
    let [i_out, i_rep_d] = fork(&mut sim, "i_fork", i_crd);

    // Co-iterate B's j coordinates with D's dense j level (rescanned per row).
    let (bj_crd, bj_ref) = wiring::scan(&mut sim, "Bj", &tb, 1, i_refs[0]);
    let rd_per_i = wiring::repeat(&mut sim, "rep_Droot", i_rep_d, rd);
    let (dj_crd, dj_ref) = wiring::scan(&mut sim, "Dj", &td, 0, rd_per_i);
    let (j_crd, j_refs) = wiring::intersect(&mut sim, "int_j", [bj_crd, dj_crd], [bj_ref, dj_ref]);
    let [j_out, j_rep_ci] = fork(&mut sim, "j_fork", j_crd);

    // Broadcast C's row fiber reference over the surviving j coordinates.
    let c_i_per_j = wiring::repeat(&mut sim, "rep_Ci", j_rep_ci, i_refs[1]);

    let (xi_sink, xj_sink, xv_sink) =
        fused_tail(&mut sim, &tb, &tc, &td, c_i_per_j, j_refs[1], j_refs[0], i_out, j_out);
    let report = sim.run(MAX_CYCLES).expect("fused coiterating SDDMM simulation");
    let output = assemble(
        rows,
        cols,
        wiring::take_level(&xi_sink),
        wiring::take_level(&xj_sink),
        wiring::take_vals(&xv_sink),
    );
    KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() }
}

/// The unfused algorithm: materialize `T = C * D^T` with a dense inner-product
/// matrix multiply, then sample it with B.
fn unfused(b: &CooTensor, c: &CooTensor, d: &CooTensor) -> KernelResult {
    // Phase 1: dense T(i,j) = sum_k C(i,k) * D(j,k). Reuse the inner-product
    // SpM*SpM graph on dense operands (D enters as its transpose).
    let mut d_t = CooTensor::new(vec![d.shape()[1], d.shape()[0]]);
    for (p, v) in d.entries() {
        d_t.push(&[p[1], p[0]], *v).expect("in bounds");
    }
    let phase1 = spmm(c, &d_t, SpmmDataflow::InnerProduct);
    // Phase 2: X = B .* T, an element-wise sampled multiply over B's nonzeros.
    let t_coo = phase1.output.to_coo();
    let phase2 = sample_elementwise(b, &t_coo);
    KernelResult {
        output: phase2.output,
        cycles: phase1.cycles + phase2.cycles,
        blocks: phase1.blocks + phase2.blocks,
    }
}

/// Element-wise sampling `X = B .* T` where `T` is dense: iterate B and locate
/// into T.
fn sample_elementwise(b: &CooTensor, t: &CooTensor) -> KernelResult {
    let (rows, cols) = (b.shape()[0], b.shape()[1]);
    let tb = Tensor::from_coo("B", b, TensorFormat::dcsr());
    let tt = Tensor::from_coo("T", t, TensorFormat::dense(2));
    let mut sim = Simulator::new();
    let rb = wiring::root(&mut sim, "B");
    let (bi_crd, bi_ref) = wiring::scan(&mut sim, "Bi", &tb, 0, rb);
    let [bi_out, bi_loc, bi_rep] = fork(&mut sim, "bi_fork", bi_crd);
    let rt = wiring::root(&mut sim, "T");
    let rt_per_i = wiring::repeat(&mut sim, "rep_Troot", bi_rep, rt);
    let (_ti_crd, _ti_pass, ti_ref) = wiring::locate(&mut sim, "loc_Ti", &tt, 0, bi_loc, rt_per_i);
    let (bj_crd, bj_ref) = wiring::scan(&mut sim, "Bj", &tb, 1, bi_ref);
    let [bj_out, bj_loc, bj_rep] = fork(&mut sim, "bj_fork", bj_crd);
    let ti_per_j = wiring::repeat(&mut sim, "rep_Ti", bj_rep, ti_ref);
    let (_tj_crd, _tj_pass, tj_ref) = wiring::locate(&mut sim, "loc_Tj", &tt, 1, bj_loc, ti_per_j);
    let b_vals = wiring::val_array(&mut sim, "B_vals", &tb, bj_ref);
    let t_vals = wiring::val_array(&mut sim, "T_vals", &tt, tj_ref);
    let prod = wiring::alu(&mut sim, "mul", AluOp::Mul, b_vals, t_vals);
    let xi_sink = wiring::write_level(&mut sim, "Xi", rows, bi_out);
    let xj_sink = wiring::write_level(&mut sim, "Xj", cols, bj_out);
    let xv_sink = wiring::write_vals(&mut sim, "Xvals", prod);
    let report = sim.run(MAX_CYCLES).expect("sampling simulation");
    let output = assemble(
        rows,
        cols,
        wiring::take_level(&xi_sink),
        wiring::take_level(&xj_sink),
        wiring::take_vals(&xv_sink),
    );
    KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_tensor::expr::table1;
    use sam_tensor::reference::Environment;
    use sam_tensor::synth;

    fn oracle(b: &CooTensor, c: &CooTensor, d: &CooTensor) -> sam_tensor::DenseTensor {
        let mut env = Environment::new();
        env.insert("B", Tensor::from_coo("B", b, TensorFormat::dense(2)).to_dense());
        env.insert("C", Tensor::from_coo("C", c, TensorFormat::dense(2)).to_dense());
        env.insert("D", Tensor::from_coo("D", d, TensorFormat::dense(2)).to_dense());
        env.bind_dims(&table1::sddmm(), &[]);
        env.evaluate(&table1::sddmm()).unwrap()
    }

    #[test]
    fn all_variants_match_reference() {
        let (i, j, k) = (20, 18, 6);
        let b = synth::random_matrix_sparsity(i, j, 0.9, 1);
        let c = synth::dense_matrix(i, k, 2);
        let d = synth::dense_matrix(j, k, 3);
        let expect = oracle(&b, &c, &d);
        for variant in [SddmmVariant::FusedLocating, SddmmVariant::FusedCoiteration, SddmmVariant::Unfused] {
            let result = sddmm(&b, &c, &d, variant);
            assert!(
                result.output.to_dense().approx_eq(&expect),
                "{} disagreed with the reference",
                variant.label()
            );
        }
    }

    #[test]
    fn fusion_beats_unfused_on_sparse_samples() {
        let (i, j, k) = (40, 40, 4);
        let b = synth::random_matrix_sparsity(i, j, 0.95, 5);
        let c = synth::dense_matrix(i, k, 6);
        let d = synth::dense_matrix(j, k, 7);
        let fused = sddmm(&b, &c, &d, SddmmVariant::FusedLocating);
        let unfused = sddmm(&b, &c, &d, SddmmVariant::Unfused);
        assert!(
            fused.cycles < unfused.cycles,
            "fused ({}) should beat unfused ({})",
            fused.cycles,
            unfused.cycles
        );
    }

    #[test]
    fn locating_beats_coiteration_for_small_k() {
        let (i, j, k) = (60, 60, 1);
        let b = synth::random_matrix_sparsity(i, j, 0.95, 8);
        let c = synth::dense_matrix(i, k, 9);
        let d = synth::dense_matrix(j, k, 10);
        let locating = sddmm(&b, &c, &d, SddmmVariant::FusedLocating);
        let coiter = sddmm(&b, &c, &d, SddmmVariant::FusedCoiteration);
        assert!(
            locating.cycles < coiter.cycles,
            "locating ({}) should beat coiteration ({})",
            locating.cycles,
            coiter.cycles
        );
    }
}
