//! Sparse matrix-vector multiplication `x(i) = sum_j B(i,j) * c(j)`.
//!
//! The graph follows the linear-combination-of-rows pattern: B's rows are
//! scanned, each row's column coordinates are located into the dense vector
//! (Section 4.2's iterate-locate optimization), values are multiplied and a
//! scalar reducer accumulates each row.

use crate::kernels::{KernelResult, MAX_CYCLES};
use crate::wiring::{self, fork};
use sam_primitives::{AluOp, EmptyFiberPolicy};
use sam_sim::Simulator;
use sam_tensor::{CooTensor, Tensor, TensorFormat};

/// Runs SpMV with `B` stored DCSR and `c` stored dense.
///
/// # Panics
///
/// Panics if shapes are inconsistent or the simulation fails.
pub fn spmv(b: &CooTensor, c: &CooTensor) -> KernelResult {
    assert_eq!(b.order(), 2, "B must be a matrix");
    assert_eq!(c.order(), 1, "c must be a vector");
    assert_eq!(b.shape()[1], c.shape()[0], "inner dimensions must agree");
    let rows = b.shape()[0];
    let tb = Tensor::from_coo("B", b, TensorFormat::dcsr());
    let tc = Tensor::from_coo("c", c, TensorFormat::dense_vec());

    let mut sim = Simulator::new();
    let rb = wiring::root(&mut sim, "B");
    let (bi_crd, bi_ref) = wiring::scan(&mut sim, "Bi", &tb, 0, rb);
    let [bi_crd_rep, bi_crd_out] = fork(&mut sim, "bi_fork", bi_crd);
    let (bj_crd, bj_ref) = wiring::scan(&mut sim, "Bj", &tb, 1, bi_ref);
    let [bj_crd_rep, bj_crd_loc] = fork(&mut sim, "bj_fork", bj_crd);
    // Broadcast c's root reference once per row, then once per column
    // coordinate (paper Figure 4's repeater chain), and locate each column
    // coordinate into the dense vector.
    let rc = wiring::root(&mut sim, "c");
    let c_root_per_i = wiring::repeat(&mut sim, "rep_ci", bi_crd_rep, rc);
    let c_root_per_j = wiring::repeat(&mut sim, "rep_cj", bj_crd_rep, c_root_per_i);
    let (_loc_crd, _loc_pass, c_val_ref) =
        wiring::locate(&mut sim, "loc_c", &tc, 0, bj_crd_loc, c_root_per_j);
    let b_vals = wiring::val_array(&mut sim, "B_vals", &tb, bj_ref);
    let c_vals = wiring::val_array(&mut sim, "c_vals", &tc, c_val_ref);
    let prod = wiring::alu(&mut sim, "mul", AluOp::Mul, b_vals, c_vals);
    let x_vals = wiring::reduce_scalar(&mut sim, "reduce_j", prod, EmptyFiberPolicy::ExplicitZero);
    let xi_sink = wiring::write_level(&mut sim, "xi", rows, bi_crd_out);
    let xv_sink = wiring::write_vals(&mut sim, "xvals", x_vals);
    let report = sim.run(MAX_CYCLES).expect("SpMV simulation");
    let level = wiring::take_level(&xi_sink);
    let vals = wiring::take_vals(&xv_sink);
    let output = Tensor::from_parts(
        "x",
        vec![rows],
        TensorFormat::sparse_vec(),
        vec![sam_tensor::level::Level::Compressed(level)],
        vals,
    );
    KernelResult { output, cycles: report.cycles, blocks: sim.num_blocks() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_tensor::expr::table1;
    use sam_tensor::reference::Environment;
    use sam_tensor::synth;

    #[test]
    fn spmv_matches_reference() {
        let b = synth::random_matrix_sparsity(40, 30, 0.9, 7);
        let c = synth::random_vector(30, 30, 8); // fully dense vector
        let result = spmv(&b, &c);
        let mut env = Environment::new();
        env.insert("B", Tensor::from_coo("B", &b, TensorFormat::dense(2)).to_dense());
        env.insert("c", Tensor::from_coo("c", &c, TensorFormat::dense_vec()).to_dense());
        env.bind_dims(&table1::spmv(), &[]);
        let expect = env.evaluate(&table1::spmv()).unwrap();
        assert!(result.output.to_dense().approx_eq(&expect));
        assert!(result.cycles > 0);
        assert!(result.blocks >= 10);
    }

    #[test]
    fn spmv_handles_empty_rows() {
        // Only two rows are populated; DCSR skips the rest.
        let b = sam_tensor::CooTensor::from_entries(
            vec![6, 4],
            vec![(vec![1, 0], 2.0), (vec![1, 3], 3.0), (vec![4, 2], 5.0)],
        )
        .unwrap();
        let c = synth::random_vector(4, 4, 1);
        let result = spmv(&b, &c);
        let dense_c = Tensor::from_coo("c", &c, TensorFormat::dense_vec()).to_dense();
        let x = result.output.to_dense();
        assert!((x.at(&[1]) - (2.0 * dense_c.at(&[0]) + 3.0 * dense_c.at(&[3]))).abs() < 1e-9);
        assert!((x.at(&[4]) - 5.0 * dense_c.at(&[2])).abs() < 1e-9);
        assert_eq!(x.at(&[0]), 0.0);
    }
}
