//! Ergonomic construction of *executable* SAM graphs.
//!
//! [`GraphBuilder`] wraps [`SamGraph`] with one method per primitive; each
//! method adds the node, wires its inputs with explicit port annotations
//! (see [`crate::graph::Edge`]) and returns typed [`Port`] handles for its
//! outputs. Graphs built this way carry everything `sam-exec` needs to plan
//! and run them on either backend — no hand wiring of simulator channels.
//!
//! ```
//! use sam_core::build::GraphBuilder;
//!
//! // x(i) = b(i) * c(i) over two compressed vectors.
//! let mut g = GraphBuilder::new("x(i) = b(i) * c(i)");
//! let rb = g.root("b");
//! let rc = g.root("c");
//! let (b_crd, b_ref) = g.scan("b", 'i', true, rb);
//! let (c_crd, c_ref) = g.scan("c", 'i', true, rc);
//! let (i_crd, i_refs) = g.intersect('i', [b_crd, c_crd], [b_ref, c_ref]);
//! let bv = g.array("b", i_refs[0]);
//! let cv = g.array("c", i_refs[1]);
//! let prod = g.alu("mul", bv, cv);
//! g.write_level("x", 'i', i_crd);
//! g.write_vals("x", prod);
//! let graph = g.finish();
//! assert_eq!(graph.primitive_counts().intersect, 1);
//! ```

use crate::graph::{NodeId, NodeKind, SamGraph, StreamKind};

/// A producer endpoint: one output port of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Port {
    /// The producing node.
    pub node: NodeId,
    /// The output-port index on the producer.
    pub port: usize,
    /// The stream kind carried.
    pub kind: StreamKind,
}

/// Builds executable SAM graphs primitive by primitive.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    graph: SamGraph,
}

impl GraphBuilder {
    /// Starts an empty graph named after the expression it computes.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder { graph: SamGraph::new(name) }
    }

    fn connect(&mut self, from: Port, to: NodeId, dst_port: usize, label: impl Into<String>) {
        self.graph.add_edge_on(from.node, from.port, to, dst_port, from.kind, label);
    }

    /// Adds the root reference source of a tensor path.
    pub fn root(&mut self, tensor: &str) -> Port {
        let node = self.graph.add_node(NodeKind::Root { tensor: tensor.to_string() });
        Port { node, port: 0, kind: StreamKind::Ref }
    }

    /// Adds a level scanner; returns its `(crd, ref)` outputs.
    pub fn scan(&mut self, tensor: &str, index: char, compressed: bool, in_ref: Port) -> (Port, Port) {
        let node =
            self.graph.add_node(NodeKind::LevelScanner { tensor: tensor.to_string(), index, compressed });
        self.connect(in_ref, node, 0, format!("{tensor} ref"));
        (Port { node, port: 0, kind: StreamKind::Crd }, Port { node, port: 1, kind: StreamKind::Ref })
    }

    /// Adds a repeater broadcasting `in_ref` over the fibers of `in_crd`.
    pub fn repeat(&mut self, tensor: &str, index: char, in_crd: Port, in_ref: Port) -> Port {
        let node = self.graph.add_node(NodeKind::Repeater { tensor: tensor.to_string(), index });
        self.connect(in_crd, node, 0, format!("{index} crd"));
        self.connect(in_ref, node, 1, format!("{tensor} ref"));
        Port { node, port: 0, kind: StreamKind::Ref }
    }

    /// The tensor a merge operand's coordinate stream originates from, for
    /// labeling: the producing scanner/repeater/locator names its tensor;
    /// anything else (e.g. another merge's output) is opaque.
    fn operand_tensor(&self, p: Port) -> String {
        match &self.graph.nodes()[p.node.0] {
            NodeKind::LevelScanner { tensor, .. }
            | NodeKind::Repeater { tensor, .. }
            | NodeKind::Locator { tensor, .. } => tensor.clone(),
            _ => "?".to_string(),
        }
    }

    fn merge(
        &mut self,
        kind: NodeKind,
        index: char,
        in_crd: [Port; 2],
        in_ref: [Port; 2],
    ) -> (Port, [Port; 2]) {
        let op = match kind {
            NodeKind::Unioner { .. } => "union",
            _ => "intersect",
        };
        let label =
            format!("{op}({index}: {},{})", self.operand_tensor(in_crd[0]), self.operand_tensor(in_crd[1]));
        let node = self.graph.add_node(kind);
        self.graph.set_label(node, label);
        self.connect(in_crd[0], node, 0, format!("{index} crd a"));
        self.connect(in_crd[1], node, 1, format!("{index} crd b"));
        self.connect(in_ref[0], node, 2, "ref a");
        self.connect(in_ref[1], node, 3, "ref b");
        (
            Port { node, port: 0, kind: StreamKind::Crd },
            [Port { node, port: 1, kind: StreamKind::Ref }, Port { node, port: 2, kind: StreamKind::Ref }],
        )
    }

    /// Adds a binary intersecter; returns `(crd, [ref_a, ref_b])`.
    pub fn intersect(&mut self, index: char, in_crd: [Port; 2], in_ref: [Port; 2]) -> (Port, [Port; 2]) {
        self.merge(NodeKind::Intersecter { index }, index, in_crd, in_ref)
    }

    /// Adds a binary unioner; returns `(crd, [ref_a, ref_b])`.
    pub fn union(&mut self, index: char, in_crd: [Port; 2], in_ref: [Port; 2]) -> (Port, [Port; 2]) {
        self.merge(NodeKind::Unioner { index }, index, in_crd, in_ref)
    }

    /// Adds a binary intersecter with coordinate-skip feedback edges
    /// (Section 4.2) wired back to both operands' level scanners; returns
    /// `(crd, [ref_a, ref_b])` like [`GraphBuilder::intersect`].
    ///
    /// On a coordinate mismatch the intersecter sends the larger coordinate
    /// back along the skip edge, and the trailing operand's scanner gallops
    /// past every smaller coordinate it has not yet emitted — the paper's
    /// optimization for skewed intersections (one dense operand, one
    /// hypersparse).
    ///
    /// # Panics
    ///
    /// Panics unless both `in_crd` ports are the coordinate outputs of level
    /// scanners: skip feedback only makes sense towards a scanner that can
    /// fast-forward its fiber cursor.
    pub fn intersect_with_skip(
        &mut self,
        index: char,
        in_crd: [Port; 2],
        in_ref: [Port; 2],
    ) -> (Port, [Port; 2]) {
        for (side, p) in in_crd.iter().enumerate() {
            assert!(
                matches!(self.graph.nodes()[p.node.0], NodeKind::LevelScanner { .. }) && p.port == 0,
                "skip operand {side} of intersect {index} must be a level scanner's crd output"
            );
        }
        let (crd, refs) = self.merge(NodeKind::Intersecter { index }, index, in_crd, in_ref);
        let node = crd.node;
        // Skip output ports 3 and 4 feed back into the scanners' skip input
        // (input port 1), against the dataflow direction.
        self.graph.add_edge_on(node, 3, in_crd[0].node, 1, StreamKind::Skip, format!("{index} skip a"));
        self.graph.add_edge_on(node, 4, in_crd[1].node, 1, StreamKind::Skip, format!("{index} skip b"));
        (crd, refs)
    }

    /// Adds a locator; returns `(crd, pass ref, located ref)`.
    pub fn locate(&mut self, tensor: &str, index: char, in_crd: Port, in_ref: Port) -> (Port, Port, Port) {
        let node = self.graph.add_node(NodeKind::Locator { tensor: tensor.to_string(), index });
        self.connect(in_crd, node, 0, format!("{index} crd"));
        self.connect(in_ref, node, 1, format!("{tensor} ref"));
        (
            Port { node, port: 0, kind: StreamKind::Crd },
            Port { node, port: 1, kind: StreamKind::Ref },
            Port { node, port: 2, kind: StreamKind::Ref },
        )
    }

    /// Adds a value-load array over the named tensor's values.
    pub fn array(&mut self, tensor: &str, in_ref: Port) -> Port {
        let node = self.graph.add_node(NodeKind::Array { tensor: tensor.to_string() });
        self.connect(in_ref, node, 0, "val ref");
        Port { node, port: 0, kind: StreamKind::Val }
    }

    /// Adds a constant-value source over a compile-time literal: for every
    /// data token of `shape` (normally the value stream of the operand the
    /// constant combines with) it emits `value`, mirroring control tokens.
    pub fn literal(&mut self, value: f64, shape: Port) -> Port {
        let node = self.graph.add_node(NodeKind::literal(value));
        self.connect(shape, node, 0, format!("shape for {value}"));
        Port { node, port: 0, kind: StreamKind::Val }
    }

    /// Adds a constant-value source over a bound single-value tensor (a
    /// zero-index access such as `alpha` in MatTransMul); the scalar is
    /// resolved from the binding at planning time.
    pub fn scalar_source(&mut self, tensor: &str, shape: Port) -> Port {
        let node = self.graph.add_node(NodeKind::scalar(tensor));
        self.connect(shape, node, 0, format!("shape for {tensor}"));
        Port { node, port: 0, kind: StreamKind::Val }
    }

    /// Adds an ALU applying `op` ("add", "sub" or "mul").
    pub fn alu(&mut self, op: &str, a: Port, b: Port) -> Port {
        let node = self.graph.add_node(NodeKind::Alu { op: op.to_string() });
        self.connect(a, node, 0, "val a");
        self.connect(b, node, 1, "val b");
        Port { node, port: 0, kind: StreamKind::Val }
    }

    /// Adds a scalar (order-0) reducer.
    pub fn reduce_scalar(&mut self, in_val: Port) -> Port {
        let node = self.graph.add_node(NodeKind::Reducer { order: 0 });
        self.connect(in_val, node, 0, "val");
        Port { node, port: 0, kind: StreamKind::Val }
    }

    /// Adds a vector (order-1) reducer; returns `(crd, val)`.
    pub fn reduce_vector(&mut self, in_crd: Port, in_val: Port) -> (Port, Port) {
        let node = self.graph.add_node(NodeKind::Reducer { order: 1 });
        self.connect(in_crd, node, 0, "crd");
        self.connect(in_val, node, 1, "val");
        (Port { node, port: 0, kind: StreamKind::Crd }, Port { node, port: 1, kind: StreamKind::Val })
    }

    /// Adds a matrix (order-2) reducer; returns `([outer crd, inner crd], val)`.
    pub fn reduce_matrix(&mut self, in_crd: [Port; 2], in_val: Port) -> ([Port; 2], Port) {
        let node = self.graph.add_node(NodeKind::Reducer { order: 2 });
        self.connect(in_crd[0], node, 0, "outer crd");
        self.connect(in_crd[1], node, 1, "inner crd");
        self.connect(in_val, node, 2, "val");
        (
            [Port { node, port: 0, kind: StreamKind::Crd }, Port { node, port: 1, kind: StreamKind::Crd }],
            Port { node, port: 2, kind: StreamKind::Val },
        )
    }

    /// Adds a coordinate dropper; returns `(outer crd, inner)`.
    pub fn crd_drop(&mut self, index: char, outer: Port, inner: Port) -> (Port, Port) {
        let node = self.graph.add_node(NodeKind::CoordDropper { index });
        self.connect(outer, node, 0, format!("{index} crd"));
        self.connect(inner, node, 1, "inner");
        (Port { node, port: 0, kind: StreamKind::Crd }, Port { node, port: 1, kind: inner.kind })
    }

    /// Adds a compressed level writer for one output dimension.
    pub fn write_level(&mut self, tensor: &str, index: char, in_crd: Port) -> NodeId {
        let node =
            self.graph.add_node(NodeKind::LevelWriter { tensor: tensor.to_string(), index, vals: false });
        self.connect(in_crd, node, 0, format!("{tensor}{index}"));
        node
    }

    /// Adds the values writer of the output tensor.
    pub fn write_vals(&mut self, tensor: &str, in_val: Port) -> NodeId {
        let node =
            self.graph.add_node(NodeKind::LevelWriter { tensor: tensor.to_string(), index: 'v', vals: true });
        self.connect(in_val, node, 0, format!("{tensor} vals"));
        node
    }

    /// A read-only view of the graph under construction.
    pub fn graph(&self) -> &SamGraph {
        &self.graph
    }

    /// Finishes and returns the graph.
    pub fn finish(self) -> SamGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_explicit_ports() {
        let mut g = GraphBuilder::new("t");
        let r = g.root("b");
        let (crd, rf) = g.scan("b", 'i', true, r);
        let v = g.array("b", rf);
        g.write_level("x", 'i', crd);
        g.write_vals("x", v);
        let graph = g.finish();
        assert_eq!(graph.len(), 5);
        assert!(graph.edges().iter().all(|e| e.src_port.is_some() && e.dst_port.is_some()));
        // The scanner's ref output (port 1) feeds the array's input port 0.
        let e = graph.edges().iter().find(|e| e.kind == StreamKind::Ref && e.src_port == Some(1)).unwrap();
        assert_eq!(e.dst_port, Some(0));
    }

    #[test]
    fn merges_carry_operand_tensor_labels() {
        let mut g = GraphBuilder::new("t");
        let rb = g.root("B");
        let rc = g.root("C");
        let (bc, br) = g.scan("B", 'j', true, rb);
        let (cc, cr) = g.scan("C", 'j', true, rc);
        let (crd, _refs) = g.intersect('j', [bc, cc], [br, cr]);
        let graph = g.graph();
        assert_eq!(graph.node_label(crd.node), "intersect(j: B,C)");

        let mut g = GraphBuilder::new("t");
        let rb = g.root("b");
        let rc = g.root("c");
        let (bc, br) = g.scan("b", 'i', true, rb);
        let (cc, cr) = g.scan("c", 'i', true, rc);
        let (crd, _refs) = g.union('i', [bc, cc], [br, cr]);
        assert_eq!(g.graph().node_label(crd.node), "union(i: b,c)");
    }

    #[test]
    fn port_signatures_cover_builder_output() {
        let mut g = GraphBuilder::new("t");
        let r0 = g.root("b");
        let r1 = g.root("c");
        let (c0, f0) = g.scan("b", 'i', true, r0);
        let (c1, f1) = g.scan("c", 'i', true, r1);
        let (_crd, refs) = g.intersect('i', [c0, c1], [f0, f1]);
        let _ = g.array("b", refs[0]);
        let graph = g.finish();
        for e in graph.edges() {
            let outs = graph.nodes()[e.from.0].output_ports();
            let ins = graph.nodes()[e.to.0].input_ports();
            assert!(outs[e.src_port.unwrap()].accepts(e.kind), "source port kind");
            assert!(ins[e.dst_port.unwrap()].accepts(e.kind), "dest port kind");
        }
    }
}
