//! The paper's kernels expressed once as executable [`SamGraph`]s.
//!
//! Each function builds the dataflow graph of one evaluation kernel
//! (Figures 11–14) through [`crate::build::GraphBuilder`]. The graphs carry
//! explicit port wiring, so `sam-exec` can plan and run them on either the
//! cycle-approximate or the fast functional backend — the same graph, two
//! execution contexts. Stream fan-out is implicit: connecting one output
//! port to several consumers makes the `sam-exec` planner insert the fork
//! that [`crate::wiring::Fork`] provides in hand-wired kernels.
//!
//! The hand-scheduled kernels in [`crate::kernels`] remain the
//! micro-architecturally tuned variants (coordinate skipping, bitvector
//! lanes); these graphs are their portable, compiler-facing counterparts.

use crate::build::{GraphBuilder, Port};
use crate::graph::SamGraph;
use crate::kernels::spmm::SpmmDataflow;

/// Adds an intersecter with or without the Section 4.2 coordinate-skip
/// feedback edges, so each kernel builder exists once and its skip-enabled
/// twin is one flag away.
fn isect(
    g: &mut GraphBuilder,
    skip: bool,
    index: char,
    in_crd: [Port; 2],
    in_ref: [Port; 2],
) -> (Port, [Port; 2]) {
    if skip {
        g.intersect_with_skip(index, in_crd, in_ref)
    } else {
        g.intersect(index, in_crd, in_ref)
    }
}

/// Element-wise sparse vector multiplication `x(i) = b(i) * c(i)`
/// (Figure 13's `Crd` configuration; pass `compressed = false` for the
/// `Dense` configuration).
pub fn vec_elem_mul(compressed: bool) -> SamGraph {
    vec_elem_mul_inner(compressed, false)
}

/// [`vec_elem_mul`] with coordinate-skip feedback on the intersection —
/// the purest demonstration of the Section 4.2 win when one vector is
/// dense-ish and the other hypersparse.
pub fn vec_elem_mul_with_skip(compressed: bool) -> SamGraph {
    vec_elem_mul_inner(compressed, true)
}

fn vec_elem_mul_inner(compressed: bool, skip: bool) -> SamGraph {
    let mut g = GraphBuilder::new("x(i) = b(i) * c(i)");
    let rb = g.root("b");
    let rc = g.root("c");
    let (b_crd, b_ref) = g.scan("b", 'i', compressed, rb);
    let (c_crd, c_ref) = g.scan("c", 'i', compressed, rc);
    let (i_crd, i_refs) = isect(&mut g, skip, 'i', [b_crd, c_crd], [b_ref, c_ref]);
    let bv = g.array("b", i_refs[0]);
    let cv = g.array("c", i_refs[1]);
    let prod = g.alu("mul", bv, cv);
    g.write_level("x", 'i', i_crd);
    g.write_vals("x", prod);
    g.finish()
}

/// The matrix identity `X(i,j) = B(i,j)` of the Figure 14 stream study.
pub fn identity() -> SamGraph {
    let mut g = GraphBuilder::new("X(i,j) = B(i,j)");
    let rb = g.root("B");
    let (bi_crd, bi_ref) = g.scan("B", 'i', true, rb);
    let (bj_crd, bj_ref) = g.scan("B", 'j', true, bi_ref);
    let vals = g.array("B", bj_ref);
    g.write_level("X", 'i', bi_crd);
    g.write_level("X", 'j', bj_crd);
    g.write_vals("X", vals);
    g.finish()
}

/// Sparse matrix-vector multiplication `x(i) = sum_j B(i,j) * c(j)` with `B`
/// DCSR and `c` dense, using the Section 4.2 iterate-locate optimization
/// exactly like the hand kernel.
pub fn spmv() -> SamGraph {
    let mut g = GraphBuilder::new("x(i) = B(i,j) * c(j)");
    let rb = g.root("B");
    let (bi_crd, bi_ref) = g.scan("B", 'i', true, rb);
    let (bj_crd, bj_ref) = g.scan("B", 'j', true, bi_ref);
    // Broadcast c's root once per row, then once per column coordinate, and
    // locate each column coordinate into the dense vector.
    let rc = g.root("c");
    let c_per_i = g.repeat("c", 'i', bi_crd, rc);
    let c_per_j = g.repeat("c", 'j', bj_crd, c_per_i);
    let (_loc_crd, _loc_pass, c_val_ref) = g.locate("c", 'j', bj_crd, c_per_j);
    let b_vals = g.array("B", bj_ref);
    let c_vals = g.array("c", c_val_ref);
    let prod = g.alu("mul", b_vals, c_vals);
    let x_vals = g.reduce_scalar(prod);
    g.write_level("x", 'i', bi_crd);
    g.write_vals("x", x_vals);
    g.finish()
}

/// Co-iteration SpMV `x(i) = sum_j B(i,j) * c(j)` with `B` DCSR and `c`
/// *compressed*: instead of locating every `B` column into a dense vector
/// (the [`spmv`] iterate-locate form), `B`'s column fibers are intersected
/// against the sparse vector, rescanned per row.
pub fn spmv_coiteration() -> SamGraph {
    spmv_coiteration_inner(false)
}

/// [`spmv_coiteration`] with coordinate-skip feedback on the `j`
/// intersection: when a `B` row is much denser than `c` (or vice versa),
/// the trailing scanner gallops instead of streaming every coordinate.
pub fn spmv_with_skip() -> SamGraph {
    spmv_coiteration_inner(true)
}

fn spmv_coiteration_inner(skip: bool) -> SamGraph {
    let mut g = GraphBuilder::new("x(i) = B(i,j) * c(j) [coiter]");
    let rb = g.root("B");
    let (bi_crd, bi_ref) = g.scan("B", 'i', true, rb);
    let (bj_crd, bj_ref) = g.scan("B", 'j', true, bi_ref);
    // Rescan the sparse vector once per row and intersect it with the row's
    // column coordinates.
    let rc = g.root("c");
    let c_per_i = g.repeat("c", 'i', bi_crd, rc);
    let (cj_crd, cj_ref) = g.scan("c", 'j', true, c_per_i);
    let (_j_crd, j_refs) = isect(&mut g, skip, 'j', [bj_crd, cj_crd], [bj_ref, cj_ref]);
    let b_vals = g.array("B", j_refs[0]);
    let c_vals = g.array("c", j_refs[1]);
    let prod = g.alu("mul", b_vals, c_vals);
    let x_vals = g.reduce_scalar(prod);
    g.write_level("x", 'i', bi_crd);
    g.write_vals("x", x_vals);
    g.finish()
}

/// SpM*SpM `X(i,j) = sum_k B(i,k) * C(k,j)` in one of the three Figure 12
/// dataflow classes. Operand formats follow the hand kernels: `B` is DCSR
/// (DCSC for the outer-product dataflow), `C` is DCSR (DCSC for the
/// inner-product dataflow).
pub fn spmm(dataflow: SpmmDataflow) -> SamGraph {
    match dataflow {
        SpmmDataflow::LinearCombination => spmm_gustavson(false),
        SpmmDataflow::InnerProduct => spmm_inner(false),
        SpmmDataflow::OuterProduct => spmm_outer(false),
    }
}

/// [`spmm`] with coordinate-skip feedback on the `k` intersection of the
/// chosen dataflow.
pub fn spmm_with_skip(dataflow: SpmmDataflow) -> SamGraph {
    match dataflow {
        SpmmDataflow::LinearCombination => spmm_gustavson(true),
        SpmmDataflow::InnerProduct => spmm_inner(true),
        SpmmDataflow::OuterProduct => spmm_outer(true),
    }
}

/// The linear-combination-of-rows (Gustavson) graph of paper Figure 4.
fn spmm_gustavson(skip: bool) -> SamGraph {
    let mut g = GraphBuilder::new("X(i,j) = B(i,k) * C(k,j) [ikj]");
    let rb = g.root("B");
    let (bi_crd, bi_ref) = g.scan("B", 'i', true, rb);
    let (bk_crd, bk_ref) = g.scan("B", 'k', true, bi_ref);
    let rc = g.root("C");
    let c_per_i = g.repeat("C", 'i', bi_crd, rc);
    let (ck_crd, ck_ref) = g.scan("C", 'k', true, c_per_i);
    let (_k_crd, k_refs) = isect(&mut g, skip, 'k', [bk_crd, ck_crd], [bk_ref, ck_ref]);
    let (cj_crd, cj_ref) = g.scan("C", 'j', true, k_refs[1]);
    let b_per_j = g.repeat("B", 'j', cj_crd, k_refs[0]);
    let b_vals = g.array("B", b_per_j);
    let c_vals = g.array("C", cj_ref);
    let prod = g.alu("mul", b_vals, c_vals);
    let (xj_crd, x_vals) = g.reduce_vector(cj_crd, prod);
    let (xi_out, xj_out) = g.crd_drop('i', bi_crd, xj_crd);
    g.write_level("X", 'i', xi_out);
    g.write_level("X", 'j', xj_out);
    g.write_vals("X", x_vals);
    g.finish()
}

/// The inner-product graph (`i -> j -> k`).
fn spmm_inner(skip: bool) -> SamGraph {
    let mut g = GraphBuilder::new("X(i,j) = B(i,k) * C(k,j) [ijk]");
    let rb = g.root("B");
    let (bi_crd, bi_ref) = g.scan("B", 'i', true, rb);
    let rc = g.root("C");
    let c_per_i = g.repeat("C", 'i', bi_crd, rc);
    let (cj_crd, cj_ref) = g.scan("C", 'j', true, c_per_i);
    let b_per_j = g.repeat("B", 'j', cj_crd, bi_ref);
    let (bk_crd, bk_ref) = g.scan("B", 'k', true, b_per_j);
    let (ck_crd, ck_ref) = g.scan("C", 'k', true, cj_ref);
    let (_k_crd, k_refs) = isect(&mut g, skip, 'k', [bk_crd, ck_crd], [bk_ref, ck_ref]);
    let b_vals = g.array("B", k_refs[0]);
    let c_vals = g.array("C", k_refs[1]);
    let prod = g.alu("mul", b_vals, c_vals);
    let x_vals = g.reduce_scalar(prod);
    g.write_level("X", 'i', bi_crd);
    g.write_level("X", 'j', cj_crd);
    g.write_vals("X", x_vals);
    g.finish()
}

/// The outer-product graph (`k -> i -> j`) with a matrix accumulator
/// (OuterSPACE, paper Figure 16).
fn spmm_outer(skip: bool) -> SamGraph {
    let mut g = GraphBuilder::new("X(i,j) = B(i,k) * C(k,j) [kij]");
    let rb = g.root("B");
    let (bk_crd, bk_ref) = g.scan("B", 'k', true, rb);
    let rc = g.root("C");
    let (ck_crd, ck_ref) = g.scan("C", 'k', true, rc);
    let (_k_crd, k_refs) = isect(&mut g, skip, 'k', [bk_crd, ck_crd], [bk_ref, ck_ref]);
    let (bi_crd, bi_ref) = g.scan("B", 'i', true, k_refs[0]);
    let c_per_i = g.repeat("C", 'i', bi_crd, k_refs[1]);
    let (cj_crd, cj_ref) = g.scan("C", 'j', true, c_per_i);
    let b_per_j = g.repeat("B", 'j', cj_crd, bi_ref);
    let b_vals = g.array("B", b_per_j);
    let c_vals = g.array("C", cj_ref);
    let prod = g.alu("mul", b_vals, c_vals);
    let (x_crds, x_vals) = g.reduce_matrix([bi_crd, cj_crd], prod);
    g.write_level("X", 'i', x_crds[0]);
    g.write_level("X", 'j', x_crds[1]);
    g.write_vals("X", x_vals);
    g.finish()
}

/// MTTKRP `X(i,j) = sum_kl B(i,k,l) * C(j,k) * D(j,l)` (Table 1) in the
/// `i -> k -> l -> j` dataflow: the order-3 operand `B` drives iteration
/// (CSF, mode order `i,k,l`), the factor matrices co-iterate against it
/// stored transposed (`C` as `k,j`, `D` as `l,j` — DCSC of their logical
/// `(j,k)` / `(j,l)` shapes), and two chained vector reducers accumulate
/// the inner `j` fibers across `l` and then across `k`.
pub fn mttkrp() -> SamGraph {
    let mut g = GraphBuilder::new("X(i,j) = B(i,k,l) * C(j,k) * D(j,l)");
    let rb = g.root("B");
    let (bi_crd, bi_ref) = g.scan("B", 'i', true, rb);
    let (bk_crd, bk_ref) = g.scan("B", 'k', true, bi_ref);

    // Co-iterate B's k fibers with C's outer (k) level, rescanned per i.
    let rc = g.root("C");
    let c_per_i = g.repeat("C", 'i', bi_crd, rc);
    let (ck_crd, ck_ref) = g.scan("C", 'k', true, c_per_i);
    let (k_crd, k_refs) = g.intersect('k', [bk_crd, ck_crd], [bk_ref, ck_ref]);

    // Co-iterate B's l fibers with D's outer (l) level, rescanned per (i,k).
    let (bl_crd, bl_ref) = g.scan("B", 'l', true, k_refs[0]);
    let rd = g.root("D");
    let d_per_i = g.repeat("D", 'i', bi_crd, rd);
    let d_per_k = g.repeat("D", 'k', k_crd, d_per_i);
    let (dl_crd, dl_ref) = g.scan("D", 'l', true, d_per_k);
    let (l_crd, l_refs) = g.intersect('l', [bl_crd, dl_crd], [bl_ref, dl_ref]);

    // The innermost loop: C's and D's j fibers, intersected per (k, l).
    let c_per_l = g.repeat("C", 'l', l_crd, k_refs[1]);
    let (cj_crd, cj_ref) = g.scan("C", 'j', true, c_per_l);
    let (dj_crd, dj_ref) = g.scan("D", 'j', true, l_refs[1]);
    let (j_crd, j_refs) = g.intersect('j', [cj_crd, dj_crd], [cj_ref, dj_ref]);

    // B(i,k,l) * C(j,k) * D(j,l), with B's value broadcast over j.
    let c_vals = g.array("C", j_refs[0]);
    let d_vals = g.array("D", j_refs[1]);
    let b_per_j = g.repeat("B", 'j', j_crd, l_refs[0]);
    let b_vals = g.array("B", b_per_j);
    let cd = g.alu("mul", c_vals, d_vals);
    let prod = g.alu("mul", cd, b_vals);

    // Sum the j fibers over l (within each k), then over k (within each i).
    let (xj_l, xv_l) = g.reduce_vector(j_crd, prod);
    let (xj, xv) = g.reduce_vector(xj_l, xv_l);
    let (xi_out, xj_out) = g.crd_drop('i', bi_crd, xj);
    g.write_level("X", 'i', xi_out);
    g.write_level("X", 'j', xj_out);
    g.write_vals("X", xv);
    g.finish()
}

/// Residual `x(i) = b(i) - sum_j C(i,j) * d(j)` (Table 1): the paper's
/// canonical *mixed* expression — an additive co-iteration at the output
/// variable (union of `b` and `C`'s rows) around a multiplicative
/// co-iteration at the reduction variable (intersection of `C`'s columns
/// with `d`). The scalar reducer closes inside the subtraction, and its
/// explicit-zero policy keeps the per-row value stream aligned with the
/// union coordinates for rows where the dot product is empty. `b` and `d`
/// are sparse vectors, `C` is DCSR.
pub fn residual() -> SamGraph {
    let mut g = GraphBuilder::new("x(i) = b(i) - C(i,j) * d(j)");
    let rb = g.root("b");
    let rc = g.root("C");
    let rd = g.root("d");
    let (bi_crd, bi_ref) = g.scan("b", 'i', true, rb);
    let (ci_crd, ci_ref) = g.scan("C", 'i', true, rc);
    let (i_crd, i_refs) = g.union('i', [bi_crd, ci_crd], [bi_ref, ci_ref]);
    let (cj_crd, cj_ref) = g.scan("C", 'j', true, i_refs[1]);
    let d_per_i = g.repeat("d", 'i', i_crd, rd);
    let (dj_crd, dj_ref) = g.scan("d", 'j', true, d_per_i);
    let (_j_crd, j_refs) = g.intersect('j', [cj_crd, dj_crd], [cj_ref, dj_ref]);
    let c_vals = g.array("C", j_refs[0]);
    let d_vals = g.array("d", j_refs[1]);
    let prod = g.alu("mul", c_vals, d_vals);
    let s = g.reduce_scalar(prod);
    let b_vals = g.array("b", i_refs[0]);
    let x_vals = g.alu("sub", b_vals, s);
    g.write_level("x", 'i', i_crd);
    g.write_vals("x", x_vals);
    g.finish()
}

/// MatTransMul `x(i) = sum_j alpha * B(j,i) * c(j) + beta * d(i)` (Table 1):
/// mixed expression with two zero-index scalar operands lowered as
/// `ConstVal` sources shaped by the value streams they multiply. `B` is
/// bound transposed (storage order `i` then `j`, i.e. DCSC of its logical
/// `(j,i)` shape), `c` and `d` are sparse vectors, and `alpha`/`beta` bind
/// as single-value tensors.
pub fn mat_trans_mul() -> SamGraph {
    let mut g = GraphBuilder::new("x(i) = alpha * B(j,i) * c(j) + beta * d(i)");
    let rb = g.root("B");
    let rd = g.root("d");
    let (bi_crd, bi_ref) = g.scan("B", 'i', true, rb);
    let (di_crd, di_ref) = g.scan("d", 'i', true, rd);
    let (i_crd, i_refs) = g.union('i', [bi_crd, di_crd], [bi_ref, di_ref]);
    let (bj_crd, bj_ref) = g.scan("B", 'j', true, i_refs[0]);
    let rc = g.root("c");
    let c_per_i = g.repeat("c", 'i', i_crd, rc);
    let (cj_crd, cj_ref) = g.scan("c", 'j', true, c_per_i);
    let (_j_crd, j_refs) = g.intersect('j', [bj_crd, cj_crd], [bj_ref, cj_ref]);
    let b_vals = g.array("B", j_refs[0]);
    let alpha = g.scalar_source("alpha", b_vals);
    let ab = g.alu("mul", alpha, b_vals);
    let c_vals = g.array("c", j_refs[1]);
    let abc = g.alu("mul", ab, c_vals);
    let s = g.reduce_scalar(abc);
    let d_vals = g.array("d", i_refs[1]);
    let beta = g.scalar_source("beta", d_vals);
    let bd = g.alu("mul", beta, d_vals);
    let x_vals = g.alu("add", s, bd);
    g.write_level("x", 'i', i_crd);
    g.write_vals("x", x_vals);
    g.finish()
}

/// Plus3 `X(i,j) = B(i,j) + C(i,j) + D(i,j)` (Table 1): a three-way union
/// at each level, lowered as a chain of binary unioners plus one
/// *realignment* unioner per level — a parallel unioner over the same
/// coordinate pair whose ref lane re-aligns the first merge's second
/// reference stream to the final coordinate space (a unioner never
/// inspects reference payloads, so any stream aligned with its coordinate
/// input threads through faithfully). All operands are DCSR.
pub fn plus3() -> SamGraph {
    let mut g = GraphBuilder::new("X(i,j) = B(i,j) + C(i,j) + D(i,j)");
    let rb = g.root("B");
    let rc = g.root("C");
    let rd = g.root("D");
    let (bi_crd, bi_ref) = g.scan("B", 'i', true, rb);
    let (ci_crd, ci_ref) = g.scan("C", 'i', true, rc);
    let (di_crd, di_ref) = g.scan("D", 'i', true, rd);
    // Chain + realignment at i.
    let (u1_crd, u1_refs) = g.union('i', [bi_crd, ci_crd], [bi_ref, ci_ref]);
    let (i_crd, i_bd) = g.union('i', [u1_crd, di_crd], [u1_refs[0], di_ref]);
    let (_, i_c) = g.union('i', [u1_crd, di_crd], [u1_refs[1], di_ref]);
    let (bj_crd, bj_ref) = g.scan("B", 'j', true, i_bd[0]);
    let (cj_crd, cj_ref) = g.scan("C", 'j', true, i_c[0]);
    let (dj_crd, dj_ref) = g.scan("D", 'j', true, i_bd[1]);
    // Chain + realignment at j.
    let (v1_crd, v1_refs) = g.union('j', [bj_crd, cj_crd], [bj_ref, cj_ref]);
    let (j_crd, j_bd) = g.union('j', [v1_crd, dj_crd], [v1_refs[0], dj_ref]);
    let (_, j_c) = g.union('j', [v1_crd, dj_crd], [v1_refs[1], dj_ref]);
    let b_vals = g.array("B", j_bd[0]);
    let c_vals = g.array("C", j_c[0]);
    let d_vals = g.array("D", j_bd[1]);
    let bc = g.alu("add", b_vals, c_vals);
    let x_vals = g.alu("add", bc, d_vals);
    g.write_level("X", 'i', i_crd);
    g.write_level("X", 'j', j_crd);
    g.write_vals("X", x_vals);
    g.finish()
}

/// Fused SDDMM `X(i,j) = sum_k B(i,j) * C(i,k) * D(j,k)` with the dense
/// factors' outer dimensions co-iterated against `B` (Figure 11's fused
/// co-iteration variant). `B` is DCSR; `C` and `D` are dense.
pub fn sddmm_coiteration() -> SamGraph {
    sddmm_coiteration_inner(false)
}

/// [`sddmm_coiteration`] with coordinate-skip feedback on the `i` and `j`
/// intersections: the dense factors' scanners gallop straight to `B`'s next
/// nonzero coordinate instead of streaming the whole dimension.
pub fn sddmm_with_skip() -> SamGraph {
    sddmm_coiteration_inner(true)
}

fn sddmm_coiteration_inner(skip: bool) -> SamGraph {
    let mut g = GraphBuilder::new("X(i,j) = B(i,j) * C(i,k) * D(j,k)");
    let rb = g.root("B");
    let rc = g.root("C");
    let rd = g.root("D");

    // Co-iterate B's i coordinates with C's dense i level.
    let (bi_crd, bi_ref) = g.scan("B", 'i', true, rb);
    let (ci_crd, ci_ref) = g.scan("C", 'i', false, rc);
    let (i_crd, i_refs) = isect(&mut g, skip, 'i', [bi_crd, ci_crd], [bi_ref, ci_ref]);

    // Co-iterate B's j coordinates with D's dense j level (rescanned per row).
    let (bj_crd, bj_ref) = g.scan("B", 'j', true, i_refs[0]);
    let d_per_i = g.repeat("D", 'i', i_crd, rd);
    let (dj_crd, dj_ref) = g.scan("D", 'j', false, d_per_i);
    let (j_crd, j_refs) = isect(&mut g, skip, 'j', [bj_crd, dj_crd], [bj_ref, dj_ref]);

    // Broadcast C's row fiber reference over the surviving j coordinates.
    let c_per_j = g.repeat("C", 'j', j_crd, i_refs[1]);

    // Inner product over k, then scale by B's values.
    let (ck_crd, ck_ref) = g.scan("C", 'k', false, c_per_j);
    let (dk_crd, dk_ref) = g.scan("D", 'k', false, j_refs[1]);
    let (_k_crd, k_refs) = g.intersect('k', [ck_crd, dk_crd], [ck_ref, dk_ref]);
    let c_vals = g.array("C", k_refs[0]);
    let d_vals = g.array("D", k_refs[1]);
    let prod_cd = g.alu("mul", c_vals, d_vals);
    let s = g.reduce_scalar(prod_cd);
    let b_vals = g.array("B", j_refs[0]);
    let x_vals = g.alu("mul", b_vals, s);

    g.write_level("X", 'i', i_crd);
    g.write_level("X", 'j', j_crd);
    g.write_vals("X", x_vals);
    g.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    #[test]
    fn graphs_are_fully_port_wired() {
        for graph in [
            vec_elem_mul(true),
            vec_elem_mul_with_skip(true),
            identity(),
            spmv(),
            spmv_coiteration(),
            spmv_with_skip(),
            spmm(SpmmDataflow::LinearCombination),
            spmm(SpmmDataflow::InnerProduct),
            spmm(SpmmDataflow::OuterProduct),
            spmm_with_skip(SpmmDataflow::LinearCombination),
            sddmm_coiteration(),
            sddmm_with_skip(),
            mttkrp(),
            residual(),
            mat_trans_mul(),
            plus3(),
        ] {
            assert!(!graph.is_empty());
            for e in graph.edges() {
                assert!(e.src_port.is_some() && e.dst_port.is_some(), "{}: unported edge", graph.name);
                let outs = graph.nodes()[e.from.0].output_ports();
                let ins = graph.nodes()[e.to.0].input_ports();
                assert!(outs[e.src_port.unwrap()].accepts(e.kind), "{}: bad src", graph.name);
                assert!(ins[e.dst_port.unwrap()].accepts(e.kind), "{}: bad dst", graph.name);
            }
        }
    }

    #[test]
    fn spmv_graph_matches_hand_kernel_structure() {
        let c = spmv().primitive_counts();
        assert_eq!(c.level_scan, 2);
        assert_eq!(c.repeat, 2);
        assert_eq!(c.locate, 1);
        assert_eq!(c.array, 2);
        assert_eq!(c.alu, 1);
        assert_eq!(c.reduce, 1);
        assert_eq!(c.level_write, 2);
    }

    #[test]
    fn mttkrp_graph_chains_two_vector_reducers() {
        let g = mttkrp();
        let c = g.primitive_counts();
        assert_eq!(c.level_scan, 7);
        assert_eq!(c.intersect, 3);
        assert_eq!(c.repeat, 5);
        assert_eq!(c.reduce, 2);
        assert_eq!(c.array, 3);
        assert!(g.has_kind(|n| matches!(n, NodeKind::CoordDropper { .. })));
    }

    #[test]
    fn skip_variants_add_only_feedback_edges() {
        use crate::graph::StreamKind;
        for (plain, with_skip, lanes) in [
            (vec_elem_mul(true), vec_elem_mul_with_skip(true), 2),
            (spmv_coiteration(), spmv_with_skip(), 2),
            (spmm(SpmmDataflow::LinearCombination), spmm_with_skip(SpmmDataflow::LinearCombination), 2),
            (spmm(SpmmDataflow::InnerProduct), spmm_with_skip(SpmmDataflow::InnerProduct), 2),
            (spmm(SpmmDataflow::OuterProduct), spmm_with_skip(SpmmDataflow::OuterProduct), 2),
            (sddmm_coiteration(), sddmm_with_skip(), 4),
        ] {
            let count = |g: &SamGraph| g.edges().iter().filter(|e| e.kind == StreamKind::Skip).count();
            assert_eq!(count(&plain), 0, "{}: unexpected skip edges", plain.name);
            assert_eq!(count(&with_skip), lanes, "{}: wrong skip lane count", with_skip.name);
            // The twins share their primitive structure exactly — skip is
            // pure feedback wiring, not extra compute nodes.
            assert_eq!(plain.primitive_counts(), with_skip.primitive_counts());
            assert_eq!(plain.len(), with_skip.len());
            // Every skip edge runs from an intersecter's skip port back to a
            // level scanner's skip input.
            for e in with_skip.edges().iter().filter(|e| e.kind == StreamKind::Skip) {
                assert!(matches!(with_skip.nodes()[e.from.0], NodeKind::Intersecter { .. }));
                assert!(matches!(with_skip.nodes()[e.to.0], NodeKind::LevelScanner { .. }));
                assert!(e.src_port == Some(3) || e.src_port == Some(4));
                assert_eq!(e.dst_port, Some(1));
            }
        }
    }

    #[test]
    fn mixed_kernels_merge_both_ways() {
        for (graph, unions, intersects) in [(residual(), 1, 1), (mat_trans_mul(), 1, 1), (plus3(), 6, 0)] {
            let c = graph.primitive_counts();
            assert_eq!(c.union, unions, "{}", graph.name);
            assert_eq!(c.intersect, intersects, "{}", graph.name);
        }
        assert!(mat_trans_mul().has_kind(|n| matches!(n, NodeKind::ConstVal { .. })));
        assert!(!residual().has_kind(|n| matches!(n, NodeKind::CoordDropper { .. })));
    }

    #[test]
    fn gustavson_graph_has_dropper_and_vector_reducer() {
        let g = spmm(SpmmDataflow::LinearCombination);
        assert!(g.has_kind(|n| matches!(n, NodeKind::CoordDropper { .. })));
        assert!(g.has_kind(|n| matches!(n, NodeKind::Reducer { order: 1 })));
        assert_eq!(g.primitive_counts().level_write, 3);
    }
}
