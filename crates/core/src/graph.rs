//! The SAM dataflow graph intermediate representation.
//!
//! A [`SamGraph`] is a directed graph whose nodes are SAM primitives and
//! whose edges are typed streams. It is the compiler-facing IR (the paper's
//! LLVM analogy): Custard lowers tensor index notation into this form, the
//! primitive composition of Table 1 is read off it, the Table 2 ablation
//! analyzes which graphs survive removing a primitive, and graphs can be
//! exported to Graphviz DOT (the format the paper's artifact uses).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a SAM primitive node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// The root reference source of a tensor path.
    Root {
        /// Tensor name.
        tensor: String,
    },
    /// A level scanner (Definition 3.1). `compressed` is false for
    /// uncompressed (dense) levels.
    LevelScanner {
        /// Tensor name.
        tensor: String,
        /// Index variable iterated by this scanner.
        index: char,
        /// Whether the level is stored compressed.
        compressed: bool,
    },
    /// A repeater (Definition 3.4).
    Repeater {
        /// Tensor being broadcast.
        tensor: String,
        /// Index variable broadcast over.
        index: char,
    },
    /// An intersecter (Definition 3.2).
    Intersecter {
        /// Index variable merged.
        index: char,
    },
    /// A unioner (Definition 3.3).
    Unioner {
        /// Index variable merged.
        index: char,
    },
    /// A locator (Definition 4.1).
    Locator {
        /// Tensor located into.
        tensor: String,
        /// Index variable located.
        index: char,
    },
    /// A value array in load mode (Definition 3.5).
    Array {
        /// Tensor whose values are loaded.
        tensor: String,
    },
    /// A constant-value source: re-emits one scalar for every data token of
    /// its shape input stream, mirroring control tokens, so literal operands
    /// and zero-index tensor accesses (`alpha`, `beta` in MatTransMul)
    /// align with whatever value stream they combine with.
    ConstVal {
        /// Name of the bound order-0 (single-value) tensor supplying the
        /// scalar; empty for a compile-time literal.
        tensor: String,
        /// The literal's `f64` bit pattern (bits rather than the float so
        /// the node stays `Eq`/`Hash`); ignored when `tensor` is nonempty.
        bits: u64,
    },
    /// An ALU (Definition 3.6).
    Alu {
        /// Operation mnemonic ("add", "sub" or "mul").
        op: String,
    },
    /// A reducer (Definition 3.7).
    Reducer {
        /// Accumulation order (0 scalar, 1 vector, 2 matrix).
        order: usize,
    },
    /// A coordinate dropper (Definition 3.9).
    CoordDropper {
        /// Outer index variable being filtered.
        index: char,
    },
    /// A level writer (Definition 3.8); `vals` marks the values writer.
    LevelWriter {
        /// Result tensor name.
        tensor: String,
        /// Index variable written (`'v'` for the values writer).
        index: char,
        /// Whether this writer stores the values array.
        vals: bool,
    },
    /// A stream parallelizer (Section 4.4).
    Parallelizer,
    /// A stream serializer (Section 4.4).
    Serializer,
    /// A bitvector converter (Definition 4.2).
    BitvectorConverter,
}

impl NodeKind {
    /// A [`NodeKind::ConstVal`] over a compile-time literal.
    pub fn literal(value: f64) -> NodeKind {
        NodeKind::ConstVal { tensor: String::new(), bits: value.to_bits() }
    }

    /// A [`NodeKind::ConstVal`] over a bound single-value tensor.
    pub fn scalar(tensor: &str) -> NodeKind {
        NodeKind::ConstVal { tensor: tensor.to_string(), bits: 0 }
    }

    /// Short label used in DOT output and reports.
    pub fn label(&self) -> String {
        match self {
            NodeKind::Root { tensor } => format!("root {tensor}"),
            NodeKind::LevelScanner { tensor, index, compressed } => {
                format!("scan {tensor}{index} ({})", if *compressed { "comp" } else { "dense" })
            }
            NodeKind::Repeater { tensor, index } => format!("repeat {tensor} over {index}"),
            NodeKind::Intersecter { index } => format!("intersect {index}"),
            NodeKind::Unioner { index } => format!("union {index}"),
            NodeKind::Locator { tensor, index } => format!("locate {tensor}{index}"),
            NodeKind::Array { tensor } => format!("array {tensor} vals"),
            NodeKind::ConstVal { tensor, bits } => {
                if tensor.is_empty() {
                    format!("const {}", f64::from_bits(*bits))
                } else {
                    format!("scalar {tensor}")
                }
            }
            NodeKind::Alu { op } => format!("alu {op}"),
            NodeKind::Reducer { order } => format!("reduce (order {order})"),
            NodeKind::CoordDropper { index } => format!("crddrop {index}"),
            NodeKind::LevelWriter { tensor, index, vals } => {
                if *vals {
                    format!("write {tensor} vals")
                } else {
                    format!("write {tensor}{index}")
                }
            }
            NodeKind::Parallelizer => "parallelize".to_string(),
            NodeKind::Serializer => "serialize".to_string(),
            NodeKind::BitvectorConverter => "bv convert".to_string(),
        }
    }

    /// The input-port signature of this primitive, in port order. This is the
    /// contract `sam-exec` plans against; see each primitive's definition in
    /// the paper for the port semantics.
    pub fn input_ports(&self) -> Vec<PortKind> {
        match self {
            NodeKind::Root { .. } => vec![],
            // The trailing skip port is the Section 4.2 coordinate-skip
            // feedback input; it is optional and usually unwired.
            NodeKind::LevelScanner { .. } => vec![PortKind::Ref, PortKind::Skip],
            NodeKind::Repeater { .. } => vec![PortKind::Crd, PortKind::Ref],
            NodeKind::Intersecter { .. } | NodeKind::Unioner { .. } => {
                vec![PortKind::Crd, PortKind::Crd, PortKind::Ref, PortKind::Ref]
            }
            NodeKind::Locator { .. } => vec![PortKind::Crd, PortKind::Ref],
            NodeKind::Array { .. } => vec![PortKind::Ref],
            // The shape stream: the value stream of the sibling operand the
            // constant combines with (usually a planned fork of it).
            NodeKind::ConstVal { .. } => vec![PortKind::Val],
            NodeKind::Alu { .. } => vec![PortKind::Val, PortKind::Val],
            NodeKind::Reducer { order } => match order {
                0 => vec![PortKind::Val],
                1 => vec![PortKind::Crd, PortKind::Val],
                _ => vec![PortKind::Crd, PortKind::Crd, PortKind::Val],
            },
            NodeKind::CoordDropper { .. } => vec![PortKind::Crd, PortKind::Any],
            NodeKind::LevelWriter { vals, .. } => {
                vec![if *vals { PortKind::Val } else { PortKind::Crd }]
            }
            NodeKind::Parallelizer | NodeKind::Serializer | NodeKind::BitvectorConverter => {
                vec![PortKind::Any]
            }
        }
    }

    /// The output-port signature of this primitive, in port order.
    pub fn output_ports(&self) -> Vec<PortKind> {
        match self {
            NodeKind::Root { .. } => vec![PortKind::Ref],
            NodeKind::LevelScanner { .. } => vec![PortKind::Crd, PortKind::Ref],
            NodeKind::Repeater { .. } => vec![PortKind::Ref],
            // Ports 3 and 4 are the optional coordinate-skip feedback lanes
            // towards operand 0's and operand 1's scanners (Section 4.2).
            NodeKind::Intersecter { .. } => {
                vec![PortKind::Crd, PortKind::Ref, PortKind::Ref, PortKind::Skip, PortKind::Skip]
            }
            NodeKind::Unioner { .. } => {
                vec![PortKind::Crd, PortKind::Ref, PortKind::Ref]
            }
            NodeKind::Locator { .. } => vec![PortKind::Crd, PortKind::Ref, PortKind::Ref],
            NodeKind::Array { .. } => vec![PortKind::Val],
            NodeKind::ConstVal { .. } => vec![PortKind::Val],
            NodeKind::Alu { .. } => vec![PortKind::Val],
            NodeKind::Reducer { order } => match order {
                0 => vec![PortKind::Val],
                1 => vec![PortKind::Crd, PortKind::Val],
                _ => vec![PortKind::Crd, PortKind::Crd, PortKind::Val],
            },
            NodeKind::CoordDropper { .. } => vec![PortKind::Crd, PortKind::Any],
            NodeKind::LevelWriter { .. } => vec![],
            NodeKind::Parallelizer | NodeKind::Serializer | NodeKind::BitvectorConverter => {
                vec![PortKind::Any]
            }
        }
    }
}

/// The kind of stream an edge carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKind {
    /// Coordinate stream.
    Crd,
    /// Reference stream.
    Ref,
    /// Value stream.
    Val,
    /// Bitvector stream.
    Bits,
    /// Coordinate-skip feedback stream (Section 4.2): an intersecter sends
    /// the coordinate it is waiting for back to a trailing operand's level
    /// scanner, which gallops past everything smaller. Skip edges point
    /// *against* the dataflow direction; the planner whitelists them during
    /// cycle detection.
    Skip,
}

/// The stream kind expected or produced at one port of a node.
///
/// [`PortKind::Any`] is used where a node is agnostic to the payload (the
/// coordinate dropper's inner stream carries either coordinates or values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortKind {
    /// Coordinate stream.
    Crd,
    /// Reference stream.
    Ref,
    /// Value stream.
    Val,
    /// Coordinate-skip feedback stream. Skip ports are *optional*: the
    /// planner allows them to stay unwired, unlike every other port kind.
    Skip,
    /// Either coordinates or values.
    Any,
}

impl PortKind {
    /// Whether an edge of stream kind `kind` may attach to this port.
    pub fn accepts(self, kind: StreamKind) -> bool {
        match self {
            PortKind::Crd => kind == StreamKind::Crd,
            PortKind::Ref => kind == StreamKind::Ref,
            PortKind::Val => kind == StreamKind::Val,
            PortKind::Skip => kind == StreamKind::Skip,
            PortKind::Any => matches!(kind, StreamKind::Crd | StreamKind::Val),
        }
    }
}

/// Identifier of a node within a [`SamGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// One edge: a stream from a producer node to a consumer node.
///
/// Edges may optionally name the *ports* they attach to: `src_port` is the
/// index into the producer's [`NodeKind::output_ports`] and `dst_port` the
/// index into the consumer's [`NodeKind::input_ports`]. Graphs built through
/// [`crate::build::GraphBuilder`] (and `custard::lower_exec`) always carry
/// explicit ports, which is what makes them executable by `sam-exec`;
/// schematic graphs (the original `custard::lower`) leave them `None` and
/// can still be counted, ablated and DOT-printed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Producing node.
    pub from: NodeId,
    /// Consuming node.
    pub to: NodeId,
    /// Stream kind.
    pub kind: StreamKind,
    /// Short label (e.g. which port).
    pub label: String,
    /// Output-port index on the producer, when explicitly wired.
    pub src_port: Option<usize>,
    /// Input-port index on the consumer, when explicitly wired.
    pub dst_port: Option<usize>,
}

/// Primitive counts in the Table 1 column order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrimitiveCounts {
    /// Level scanners.
    pub level_scan: usize,
    /// Repeaters.
    pub repeat: usize,
    /// Intersecters.
    pub intersect: usize,
    /// Unioners.
    pub union: usize,
    /// ALUs.
    pub alu: usize,
    /// Reducers.
    pub reduce: usize,
    /// Coordinate droppers.
    pub crd_drop: usize,
    /// Level writers (including the values writer).
    pub level_write: usize,
    /// Value arrays.
    pub array: usize,
    /// Locators.
    pub locate: usize,
}

impl PrimitiveCounts {
    /// Total number of counted primitives.
    pub fn total(&self) -> usize {
        self.level_scan
            + self.repeat
            + self.intersect
            + self.union
            + self.alu
            + self.reduce
            + self.crd_drop
            + self.level_write
            + self.array
            + self.locate
    }
}

impl fmt::Display for PrimitiveCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scan={} repeat={} intersect={} union={} alu={} reduce={} crddrop={} write={} array={}",
            self.level_scan,
            self.repeat,
            self.intersect,
            self.union,
            self.alu,
            self.reduce,
            self.crd_drop,
            self.level_write,
            self.array
        )
    }
}

/// A SAM dataflow graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SamGraph {
    /// Human-readable graph name (usually the expression).
    pub name: String,
    nodes: Vec<NodeKind>,
    edges: Vec<Edge>,
    /// Optional per-node display labels overriding [`NodeKind::label`],
    /// kept index-aligned with `nodes` (e.g. `intersect(j: B,C)` instead of
    /// `intersect j`). Builders that know operand provenance set these so
    /// planner errors and execution traces name nodes meaningfully.
    labels: Vec<Option<String>>,
}

impl SamGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        SamGraph { name: name.into(), nodes: Vec::new(), edges: Vec::new(), labels: Vec::new() }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        self.nodes.push(kind);
        self.labels.push(None);
        NodeId(self.nodes.len() - 1)
    }

    /// Overrides the display label of a node (see [`SamGraph::node_label`]).
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn set_label(&mut self, id: NodeId, label: impl Into<String>) {
        self.labels[id.0] = Some(label.into());
    }

    /// The display label of a node: the override set via
    /// [`SamGraph::set_label`] when present, otherwise the node kind's
    /// generic [`NodeKind::label`].
    ///
    /// ```
    /// use sam_core::graph::{NodeKind, SamGraph};
    /// let mut g = SamGraph::new("demo");
    /// let n = g.add_node(NodeKind::Intersecter { index: 'j' });
    /// assert_eq!(g.node_label(n), "intersect j");
    /// g.set_label(n, "intersect(j: B,C)");
    /// assert_eq!(g.node_label(n), "intersect(j: B,C)");
    /// ```
    pub fn node_label(&self, id: NodeId) -> String {
        match self.labels.get(id.0).and_then(|l| l.as_deref()) {
            Some(label) => label.to_string(),
            None => self.nodes[id.0].label(),
        }
    }

    /// Adds an edge without port annotations (schematic graphs).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: StreamKind, label: impl Into<String>) {
        self.edges.push(Edge { from, to, kind, label: label.into(), src_port: None, dst_port: None });
    }

    /// Adds an edge wired to explicit producer and consumer ports, as
    /// required for execution by `sam-exec`.
    pub fn add_edge_on(
        &mut self,
        from: NodeId,
        src_port: usize,
        to: NodeId,
        dst_port: usize,
        kind: StreamKind,
        label: impl Into<String>,
    ) {
        self.edges.push(Edge {
            from,
            to,
            kind,
            label: label.into(),
            src_port: Some(src_port),
            dst_port: Some(dst_port),
        });
    }

    /// The nodes in insertion order.
    pub fn nodes(&self) -> &[NodeKind] {
        &self.nodes
    }

    /// The edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether any node of the given discriminant is present.
    pub fn has_kind(&self, pred: impl Fn(&NodeKind) -> bool) -> bool {
        self.nodes.iter().any(pred)
    }

    /// Primitive counts in the Table 1 convention (roots are not counted;
    /// locators are reported separately from intersecters).
    pub fn primitive_counts(&self) -> PrimitiveCounts {
        let mut c = PrimitiveCounts::default();
        for n in &self.nodes {
            match n {
                NodeKind::Root { .. }
                | NodeKind::ConstVal { .. }
                | NodeKind::Parallelizer
                | NodeKind::Serializer
                | NodeKind::BitvectorConverter => {}
                NodeKind::LevelScanner { .. } => c.level_scan += 1,
                NodeKind::Repeater { .. } => c.repeat += 1,
                NodeKind::Intersecter { .. } => c.intersect += 1,
                NodeKind::Unioner { .. } => c.union += 1,
                NodeKind::Locator { .. } => c.locate += 1,
                NodeKind::Array { .. } => c.array += 1,
                NodeKind::Alu { .. } => c.alu += 1,
                NodeKind::Reducer { .. } => c.reduce += 1,
                NodeKind::CoordDropper { .. } => c.crd_drop += 1,
                NodeKind::LevelWriter { .. } => c.level_write += 1,
            }
        }
        c
    }

    /// Exports the graph in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{}\" {{\n", self.name));
        out.push_str("  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n");
        for i in 0..self.nodes.len() {
            out.push_str(&format!("  n{} [label=\"{}\"];\n", i, self.node_label(NodeId(i))));
        }
        for e in &self.edges {
            let style = match e.kind {
                StreamKind::Crd => "solid",
                StreamKind::Ref => "dashed",
                StreamKind::Val => "bold",
                StreamKind::Bits | StreamKind::Skip => "dotted",
            };
            out.push_str(&format!(
                "  n{} -> n{} [style={}, label=\"{}\"];\n",
                e.from.0, e.to.0, style, e.label
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> SamGraph {
        let mut g = SamGraph::new("x(i) = b(i) * c(i)");
        let rb = g.add_node(NodeKind::Root { tensor: "b".into() });
        let sb = g.add_node(NodeKind::LevelScanner { tensor: "b".into(), index: 'i', compressed: true });
        let rc = g.add_node(NodeKind::Root { tensor: "c".into() });
        let sc = g.add_node(NodeKind::LevelScanner { tensor: "c".into(), index: 'i', compressed: true });
        let int = g.add_node(NodeKind::Intersecter { index: 'i' });
        let ab = g.add_node(NodeKind::Array { tensor: "b".into() });
        let ac = g.add_node(NodeKind::Array { tensor: "c".into() });
        let mul = g.add_node(NodeKind::Alu { op: "mul".into() });
        let wx = g.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'i', vals: false });
        let wv = g.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'v', vals: true });
        g.add_edge(rb, sb, StreamKind::Ref, "root");
        g.add_edge(rc, sc, StreamKind::Ref, "root");
        g.add_edge(sb, int, StreamKind::Crd, "crd");
        g.add_edge(sc, int, StreamKind::Crd, "crd");
        g.add_edge(int, ab, StreamKind::Ref, "ref b");
        g.add_edge(int, ac, StreamKind::Ref, "ref c");
        g.add_edge(ab, mul, StreamKind::Val, "vals");
        g.add_edge(ac, mul, StreamKind::Val, "vals");
        g.add_edge(int, wx, StreamKind::Crd, "xi");
        g.add_edge(mul, wv, StreamKind::Val, "xvals");
        g
    }

    #[test]
    fn counts_match_structure() {
        let g = tiny_graph();
        let c = g.primitive_counts();
        assert_eq!(c.level_scan, 2);
        assert_eq!(c.intersect, 1);
        assert_eq!(c.alu, 1);
        assert_eq!(c.array, 2);
        assert_eq!(c.level_write, 2);
        assert_eq!(c.union, 0);
        assert_eq!(c.total(), 8);
        assert!(!g.is_empty());
        assert_eq!(g.len(), 10);
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let g = tiny_graph();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("intersect i"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn has_kind_queries() {
        let g = tiny_graph();
        assert!(g.has_kind(|n| matches!(n, NodeKind::Intersecter { .. })));
        assert!(!g.has_kind(|n| matches!(n, NodeKind::Unioner { .. })));
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(
            NodeKind::LevelScanner { tensor: "B".into(), index: 'k', compressed: false }.label(),
            "scan Bk (dense)"
        );
        assert_eq!(NodeKind::Reducer { order: 1 }.label(), "reduce (order 1)");
        assert_eq!(
            NodeKind::LevelWriter { tensor: "X".into(), index: 'v', vals: true }.label(),
            "write X vals"
        );
    }
}
