//! # sam-core
//!
//! The SAM graph intermediate representation and the kernel library.
//!
//! * [`graph`] — the [`SamGraph`] IR: typed nodes for every
//!   SAM primitive, edges carrying stream kinds, primitive counting
//!   (Table 1 / Table 2) and Graphviz DOT export. This is the
//!   LLVM-like interface the paper positions between the Custard compiler
//!   and hardware backends.
//! * [`build`] — [`GraphBuilder`]: ergonomic
//!   construction of *executable* graphs whose edges carry explicit port
//!   annotations, the form `sam-exec` plans and runs.
//! * [`graphs`] — the paper's kernels (Figures 11–14) expressed once as
//!   executable graphs, runnable on either `sam-exec` backend.
//! * [`wiring`] — helpers that instantiate primitives into a `sam-sim`
//!   [`Simulator`](sam_sim::Simulator), plus the stream fork used when one
//!   output feeds several consumers.
//! * [`kernels`] — hand-scheduled, runnable dataflow graphs for the paper's
//!   kernels: element-wise vector multiply in the six Figure 13
//!   configurations, SpMV, SpM*SpM in the inner-product / linear-combination
//!   (Gustavson) / outer-product dataflows (Figure 12), SDDMM fused and
//!   unfused (Figure 11), and matrix identity (Figure 14). Every kernel
//!   returns its result tensor and the simulated cycle count and is checked
//!   against the dense reference evaluator.

pub mod build;
pub mod graph;
pub mod graphs;
pub mod kernels;
pub mod wiring;

pub use build::GraphBuilder;
pub use graph::{NodeKind, PortKind, PrimitiveCounts, SamGraph, StreamKind};
pub use kernels::KernelResult;
