//! Helpers for instantiating SAM primitives into a simulator.
//!
//! Kernels in [`crate::kernels`] use these helpers to keep graph wiring
//! readable: each helper adds the block plus its output channels and returns
//! the channel ids. [`Fork`] implements the stream fan-out that paper figures
//! draw implicitly when one stream feeds several consumers.

use sam_primitives::writer::{level_sink, val_sink, LevelWriterSink, ValWriterSink};
use sam_primitives::{
    root_stream, Alu, AluOp, CoordDropper, EmptyFiberPolicy, Intersecter, LevelScanner, LevelWriter, Locator,
    Reducer, Repeater, Unioner, ValArray, ValWriter,
};
use sam_sim::{Block, BlockStatus, ChannelId, Context, Simulator};
use sam_streams::Token;
use sam_tensor::Tensor;
use std::sync::Arc;

/// Copies every token of its input to each of its outputs (stream fan-out).
#[derive(Debug)]
pub struct Fork {
    name: String,
    input: ChannelId,
    outputs: Vec<ChannelId>,
    done: bool,
}

impl Fork {
    /// Creates a fork with the given outputs.
    pub fn new(name: impl Into<String>, input: ChannelId, outputs: Vec<ChannelId>) -> Self {
        Fork { name: name.into(), input, outputs, done: false }
    }
}

impl Block for Fork {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if self.outputs.iter().any(|o| !ctx.can_push(*o)) {
            return BlockStatus::Busy;
        }
        let Some(t) = ctx.peek(self.input).cloned() else {
            return BlockStatus::Busy;
        };
        ctx.pop(self.input);
        for &o in &self.outputs {
            ctx.push(o, t);
        }
        if matches!(t, Token::Done) {
            self.done = true;
            BlockStatus::Done
        } else {
            BlockStatus::Busy
        }
    }
}

/// Adds a preloaded root reference stream channel for a tensor path.
pub fn root(sim: &mut Simulator, name: &str) -> ChannelId {
    let ch = sim.add_channel(format!("{name}_root"));
    sim.preload(ch, root_stream());
    ch
}

/// Adds a level scanner over storage level `level` of `tensor`, returning its
/// coordinate and reference output channels.
pub fn scan(
    sim: &mut Simulator,
    name: &str,
    tensor: &Tensor,
    level: usize,
    in_ref: ChannelId,
) -> (ChannelId, ChannelId) {
    let crd = sim.add_channel(format!("{name}_crd"));
    let rf = sim.add_channel(format!("{name}_ref"));
    let lvl = Arc::new(tensor.level(level).clone());
    sim.add_block(Box::new(LevelScanner::new(name, lvl, in_ref, crd, rf)));
    (crd, rf)
}

/// Like [`scan`] but with a coordinate-skip input channel attached; returns
/// `(crd, ref, skip)`.
pub fn scan_with_skip(
    sim: &mut Simulator,
    name: &str,
    tensor: &Tensor,
    level: usize,
    in_ref: ChannelId,
) -> (ChannelId, ChannelId, ChannelId) {
    let crd = sim.add_channel(format!("{name}_crd"));
    let rf = sim.add_channel(format!("{name}_ref"));
    let skip = sim.add_channel(format!("{name}_skip"));
    let lvl = Arc::new(tensor.level(level).clone());
    sim.add_block(Box::new(LevelScanner::new(name, lvl, in_ref, crd, rf).with_skip(skip)));
    (crd, rf, skip)
}

/// Adds a repeater broadcasting `in_ref` over the fibers of `in_crd`.
pub fn repeat(sim: &mut Simulator, name: &str, in_crd: ChannelId, in_ref: ChannelId) -> ChannelId {
    let out = sim.add_channel(format!("{name}_ref"));
    sim.add_block(Box::new(Repeater::new(name, in_crd, in_ref, out)));
    out
}

/// Adds a binary intersecter; returns `(crd, [ref_a, ref_b])`.
pub fn intersect(
    sim: &mut Simulator,
    name: &str,
    in_crd: [ChannelId; 2],
    in_ref: [ChannelId; 2],
) -> (ChannelId, [ChannelId; 2]) {
    let crd = sim.add_channel(format!("{name}_crd"));
    let r0 = sim.add_channel(format!("{name}_ref0"));
    let r1 = sim.add_channel(format!("{name}_ref1"));
    sim.add_block(Box::new(Intersecter::new(name, in_crd, in_ref, crd, [r0, r1])));
    (crd, [r0, r1])
}

/// Adds a binary intersecter with skip feedback channels pointed at the two
/// operand scanners.
pub fn intersect_with_skip(
    sim: &mut Simulator,
    name: &str,
    in_crd: [ChannelId; 2],
    in_ref: [ChannelId; 2],
    skip: [ChannelId; 2],
) -> (ChannelId, [ChannelId; 2]) {
    let crd = sim.add_channel(format!("{name}_crd"));
    let r0 = sim.add_channel(format!("{name}_ref0"));
    let r1 = sim.add_channel(format!("{name}_ref1"));
    sim.add_block(Box::new(Intersecter::new(name, in_crd, in_ref, crd, [r0, r1]).with_skip(skip)));
    (crd, [r0, r1])
}

/// Adds a binary unioner; returns `(crd, [ref_a, ref_b])`.
pub fn union(
    sim: &mut Simulator,
    name: &str,
    in_crd: [ChannelId; 2],
    in_ref: [ChannelId; 2],
) -> (ChannelId, [ChannelId; 2]) {
    let crd = sim.add_channel(format!("{name}_crd"));
    let r0 = sim.add_channel(format!("{name}_ref0"));
    let r1 = sim.add_channel(format!("{name}_ref1"));
    sim.add_block(Box::new(Unioner::new(name, in_crd, in_ref, crd, [r0, r1])));
    (crd, [r0, r1])
}

/// Adds a locator into storage level `level` of `tensor`; returns
/// `(crd, pass_ref, located_ref)`.
pub fn locate(
    sim: &mut Simulator,
    name: &str,
    tensor: &Tensor,
    level: usize,
    in_crd: ChannelId,
    in_ref: ChannelId,
) -> (ChannelId, ChannelId, ChannelId) {
    let crd = sim.add_channel(format!("{name}_crd"));
    let pass = sim.add_channel(format!("{name}_pass"));
    let loc = sim.add_channel(format!("{name}_loc"));
    let lvl = Arc::new(tensor.level(level).clone());
    sim.add_block(Box::new(Locator::new(name, lvl, in_crd, in_ref, crd, pass, loc)));
    (crd, pass, loc)
}

/// Adds a value-load array over `tensor`'s values.
pub fn val_array(sim: &mut Simulator, name: &str, tensor: &Tensor, in_ref: ChannelId) -> ChannelId {
    let out = sim.add_channel(format!("{name}_val"));
    sim.add_block(Box::new(ValArray::new(name, Arc::new(tensor.vals().to_vec()), in_ref, out)));
    out
}

/// Adds an ALU.
pub fn alu(sim: &mut Simulator, name: &str, op: AluOp, a: ChannelId, b: ChannelId) -> ChannelId {
    let out = sim.add_channel(format!("{name}_val"));
    sim.add_block(Box::new(Alu::new(name, op, [a, b], out)));
    out
}

/// Adds a scalar reducer.
pub fn reduce_scalar(
    sim: &mut Simulator,
    name: &str,
    in_val: ChannelId,
    policy: EmptyFiberPolicy,
) -> ChannelId {
    let out = sim.add_channel(format!("{name}_val"));
    sim.add_block(Box::new(Reducer::scalar(name, in_val, out, policy)));
    out
}

/// Adds a vector reducer; returns `(crd, val)`.
pub fn reduce_vector(
    sim: &mut Simulator,
    name: &str,
    in_crd: ChannelId,
    in_val: ChannelId,
    policy: EmptyFiberPolicy,
) -> (ChannelId, ChannelId) {
    let crd = sim.add_channel(format!("{name}_crd"));
    let val = sim.add_channel(format!("{name}_val"));
    sim.add_block(Box::new(Reducer::vector(name, in_crd, in_val, crd, val, policy)));
    (crd, val)
}

/// Adds a matrix reducer; returns `([outer crd, inner crd], val)`.
pub fn reduce_matrix(
    sim: &mut Simulator,
    name: &str,
    in_crd: [ChannelId; 2],
    in_val: ChannelId,
    policy: EmptyFiberPolicy,
) -> ([ChannelId; 2], ChannelId) {
    let c0 = sim.add_channel(format!("{name}_crd0"));
    let c1 = sim.add_channel(format!("{name}_crd1"));
    let val = sim.add_channel(format!("{name}_val"));
    sim.add_block(Box::new(Reducer::matrix(name, in_crd, in_val, [c0, c1], val, policy)));
    ([c0, c1], val)
}

/// Adds a coordinate dropper; returns `(outer crd, inner)`.
pub fn crd_drop(
    sim: &mut Simulator,
    name: &str,
    outer: ChannelId,
    inner: ChannelId,
) -> (ChannelId, ChannelId) {
    let oc = sim.add_channel(format!("{name}_outer"));
    let oi = sim.add_channel(format!("{name}_inner"));
    sim.add_block(Box::new(CoordDropper::new(name, outer, inner, oc, oi)));
    (oc, oi)
}

/// Adds a compressed level writer; returns its sink.
pub fn write_level(sim: &mut Simulator, name: &str, dim: usize, in_crd: ChannelId) -> LevelWriterSink {
    let sink = level_sink();
    sim.add_block(Box::new(LevelWriter::new(name, dim, in_crd, sink.clone())));
    sink
}

/// Adds a values writer; returns its sink.
pub fn write_vals(sim: &mut Simulator, name: &str, in_val: ChannelId) -> ValWriterSink {
    let sink = val_sink();
    sim.add_block(Box::new(ValWriter::new(name, in_val, sink.clone())));
    sink
}

/// Forks a channel into `n` copies.
pub fn fork<const N: usize>(sim: &mut Simulator, name: &str, input: ChannelId) -> [ChannelId; N] {
    let outs: Vec<ChannelId> = (0..N).map(|i| sim.add_channel(format!("{name}_fork{i}"))).collect();
    sim.add_block(Box::new(Fork::new(name, input, outs.clone())));
    outs.try_into().expect("length matches")
}

/// Reads a level-writer sink, panicking when the simulation did not finish it.
pub fn take_level(sink: &LevelWriterSink) -> sam_tensor::level::CompressedLevel {
    sink.lock().expect("poisoned sink").clone().expect("level writer did not finish")
}

/// Reads a values-writer sink, panicking when the simulation did not finish it.
pub fn take_vals(sink: &ValWriterSink) -> Vec<f64> {
    sink.lock().expect("poisoned sink").clone().expect("value writer did not finish")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_sim::payload::tok;

    #[test]
    fn fork_duplicates_streams() {
        let mut sim = Simulator::new();
        let a = sim.add_channel("a");
        let [b, c] = fork::<2>(&mut sim, "f", a);
        sim.record(b);
        sim.record(c);
        sim.preload(a, vec![tok::crd(1), tok::stop(0), tok::done()]);
        sim.run(100).unwrap();
        assert_eq!(sim.history(b), sim.history(c));
        assert_eq!(sim.history(b).len(), 3);
    }

    #[test]
    fn scan_helper_runs_end_to_end() {
        use sam_tensor::{CooTensor, TensorFormat};
        let coo = CooTensor::from_entries(vec![4], vec![(vec![1], 2.0), (vec![3], 4.0)]).unwrap();
        let t = Tensor::from_coo("b", &coo, TensorFormat::sparse_vec());
        let mut sim = Simulator::new();
        let r = root(&mut sim, "b");
        let (crd, rf) = scan(&mut sim, "bi", &t, 0, r);
        let v = val_array(&mut sim, "bvals", &t, rf);
        let sink = write_vals(&mut sim, "out", v);
        sim.record(crd);
        sim.run(100).unwrap();
        assert_eq!(take_vals(&sink), vec![2.0, 4.0]);
    }
}
