//! Service telemetry: the metrics surface behind
//! [`Service::metrics_snapshot`](crate::Service::metrics_snapshot) and
//! [`Service::render_prometheus`](crate::Service::render_prometheus).
//!
//! The service threads its query lifecycle through one `Telemetry`
//! instance (crate-private): every resolved query contributes a
//! [`sam_trace::QuerySpan`] whose six stage durations feed per-stage
//! histograms, a total-latency histogram, and a per-backend execute
//! histogram; batch formation feeds a batch-size histogram; submission
//! keeps a lane-depth high-water gauge; completions feed a rolling-window
//! qps estimate. Everything rides the lock-free primitives in
//! [`sam_trace::metrics`], so the per-query cost is a handful of relaxed
//! atomic adds — and with [`TelemetryConfig::enabled`] off, the service
//! skips even the clock reads and the lifecycle counters are all that
//! remain.
//!
//! Queries slower than [`TelemetryConfig::slow_query`] additionally emit a
//! single-line JSON event (the full span, plus an [`ExecProfile`] summary
//! when the query opted into tracing) onto an in-memory ring and, when
//! [`TelemetryConfig::event_log`] is set, a JSONL file.

use sam_exec::{PlanCacheStats, WorkerStats};
use sam_trace::{
    Counter, ExecProfile, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, QuerySpan, Stage,
};
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::store::MaterializeStats;

/// Bound on the rolling completion window, so a long uncollected burst
/// cannot grow the deque without limit.
const MAX_WINDOW_SAMPLES: usize = 65_536;

/// Telemetry knobs for a [`crate::Service`], set via
/// [`crate::ServiceConfig::telemetry`].
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Whether lifecycle timing is collected at all. Off, the service
    /// takes no clock reads and records no histograms, spans or events;
    /// the plain lifecycle counters ([`crate::ServiceStats`]) stay live.
    pub enabled: bool,
    /// Queries whose end-to-end latency meets this threshold emit a JSONL
    /// event with the full span. `None` disables event capture;
    /// `Some(Duration::ZERO)` captures every query.
    pub slow_query: Option<Duration>,
    /// Tee slow-query events to this file (JSONL, one object per line),
    /// in addition to the in-memory ring.
    pub event_log: Option<PathBuf>,
    /// How many slow-query events the in-memory ring retains.
    pub event_capacity: usize,
    /// The rolling window behind the `window_qps` gauge.
    pub qps_window: Duration,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            slow_query: None,
            event_log: None,
            event_capacity: 256,
            qps_window: Duration::from_secs(1),
        }
    }
}

/// One pool worker's activity, with utilization relative to service
/// uptime.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerTelemetry {
    /// Tasks this worker executed.
    pub tasks: u64,
    /// Tasks this worker stole from another worker's queue.
    pub steals: u64,
    /// Wall nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// `busy_ns` over service uptime, in `[0, 1]`.
    pub utilization: f64,
}

/// A typed point-in-time view of every service metric — the first of the
/// three exposition surfaces (the others: Prometheus text via
/// [`crate::Service::render_prometheus`], JSONL slow-query events via
/// [`crate::Service::recent_events`]).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Queries accepted by [`crate::Service::submit`].
    pub submitted: u64,
    /// Queries that finished successfully.
    pub completed: u64,
    /// Queries that resolved to an error.
    pub failed: u64,
    /// Coordinator drain cycles that dispatched at least one query.
    pub batches: u64,
    /// Queries that rode in a same-plan group of two or more.
    pub batched_same_plan: u64,
    /// Compile-cache hits.
    pub compile_hits: u64,
    /// Compile-cache misses.
    pub compile_misses: u64,
    /// Queries that met the slow-query threshold.
    pub slow_queries: u64,
    /// The service plan cache's counters.
    pub plans: PlanCacheStats,
    /// Per-stage latency distributions, indexed by [`Stage::index`].
    pub stages: Vec<HistogramSnapshot>,
    /// End-to-end (submit → resolve) latency distribution, nanoseconds.
    pub latency: HistogramSnapshot,
    /// Executed batch-group sizes (one observation per same-plan group).
    pub batch_size: HistogramSnapshot,
    /// Execute-stage latency split by backend label.
    pub execute_by_backend: Vec<(String, HistogramSnapshot)>,
    /// Deepest any submission lane has been.
    pub lane_depth_high_water: u64,
    /// Completions per second over the trailing
    /// [`TelemetryConfig::qps_window`].
    pub window_qps: f64,
    /// Fraction of finished queries that shared a same-plan group of two
    /// or more.
    pub same_plan_rate: f64,
    /// The operand store's materialization counters.
    pub store: MaterializeStats,
    /// Per-worker pool activity (worker 0 is the coordinator).
    pub workers: Vec<WorkerTelemetry>,
    /// Time since the service started.
    pub uptime: Duration,
}

impl MetricsSnapshot {
    /// The latency distribution of one lifecycle stage.
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage.index()]
    }
}

struct EventLog {
    ring: VecDeque<String>,
    file: Option<std::fs::File>,
}

/// The service's metric set. Crate-private: the service exposes it only
/// through snapshots, Prometheus text and the event ring.
pub(crate) struct Telemetry {
    pub(crate) config: TelemetryConfig,
    registry: MetricsRegistry,
    // Lifecycle counters: always live, telemetry enabled or not.
    pub(crate) submitted: Arc<Counter>,
    pub(crate) completed: Arc<Counter>,
    pub(crate) failed: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) batched_same_plan: Arc<Counter>,
    pub(crate) compile_hits: Arc<Counter>,
    pub(crate) compile_misses: Arc<Counter>,
    slow_queries: Arc<Counter>,
    // Timing surfaces: recorded only when `config.enabled`.
    stages: Vec<Arc<Histogram>>,
    latency: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    execute_by_backend: Mutex<HashMap<String, Arc<Histogram>>>,
    lane_depth: Arc<Gauge>,
    window_qps: Arc<Gauge>,
    // Synced from the plan cache / store / pool at exposition time.
    plan_gauges: [Arc<Gauge>; 4],
    store_gauges: [Arc<Gauge>; 3],
    completions: Mutex<VecDeque<Instant>>,
    events: Mutex<EventLog>,
    started: Instant,
}

impl Telemetry {
    pub(crate) fn new(config: TelemetryConfig) -> Telemetry {
        let registry = MetricsRegistry::new();
        let counter = |name: &str, help: &str| registry.counter(name, help);
        let gauge = |name: &str, help: &str| registry.gauge(name, help);
        let stages = Stage::ALL
            .iter()
            .map(|s| {
                registry.histogram_with(
                    "sam_serve_stage_ns",
                    "Per-stage query lifecycle latency, nanoseconds",
                    "stage",
                    s.name(),
                )
            })
            .collect();
        let file = match (&config.event_log, config.enabled) {
            (Some(path), true) => std::fs::File::create(path).ok(),
            _ => None,
        };
        Telemetry {
            submitted: counter("sam_serve_queries_total", "Queries accepted by submit"),
            completed: counter("sam_serve_completed_total", "Queries finished successfully"),
            failed: counter("sam_serve_failed_total", "Queries resolved to an error"),
            batches: counter("sam_serve_batches_total", "Drain cycles that dispatched queries"),
            batched_same_plan: counter(
                "sam_serve_batched_same_plan_total",
                "Queries that rode in a same-plan group of two or more",
            ),
            compile_hits: counter("sam_serve_compile_hits_total", "Compile-cache hits"),
            compile_misses: counter("sam_serve_compile_misses_total", "Compile-cache misses"),
            slow_queries: counter("sam_serve_slow_queries_total", "Queries over the slow threshold"),
            stages,
            latency: registry
                .histogram("sam_serve_query_latency_ns", "End-to-end query latency, nanoseconds"),
            batch_size: registry.histogram("sam_serve_batch_size", "Executed same-plan batch group sizes"),
            execute_by_backend: Mutex::new(HashMap::new()),
            lane_depth: gauge("sam_serve_lane_depth_high_water", "Deepest any submission lane has been"),
            window_qps: gauge("sam_serve_window_qps", "Completions per second, rolling window"),
            plan_gauges: [
                gauge("sam_serve_plan_hits", "Service plan-cache hits"),
                gauge("sam_serve_plan_misses", "Service plan-cache misses"),
                gauge("sam_serve_plan_evictions", "Service plan-cache evictions"),
                gauge("sam_serve_plan_entries", "Service plan-cache resident entries"),
            ],
            store_gauges: [
                gauge("sam_serve_store_builds", "Tensor materializations built"),
                gauge("sam_serve_store_build_hits", "Tensor materializations served from cache"),
                gauge("sam_serve_store_build_ns", "Total nanoseconds spent building tensors"),
            ],
            completions: Mutex::new(VecDeque::new()),
            events: Mutex::new(EventLog { ring: VecDeque::new(), file }),
            started: Instant::now(),
            registry,
            config,
        }
    }

    /// `Instant::now()` when timing is on; `None` (no clock read) when off.
    pub(crate) fn now(&self) -> Option<Instant> {
        self.config.enabled.then(Instant::now)
    }

    /// Lane depth after a submit, for the high-water gauge.
    pub(crate) fn record_lane_depth(&self, depth: usize) {
        if self.config.enabled {
            self.lane_depth.record_max(depth as u64);
        }
    }

    /// One executed same-plan group of `size` queries.
    pub(crate) fn record_batch(&self, size: usize) {
        if self.config.enabled {
            self.batch_size.record(size as u64);
        }
    }

    /// The execute-stage histogram for `backend` (registered on first use).
    fn execute_histogram(&self, backend: &str) -> Arc<Histogram> {
        let mut map = self.execute_by_backend.lock().expect("telemetry backends");
        match map.get(backend) {
            Some(h) => Arc::clone(h),
            None => {
                let h = self.registry.histogram_with(
                    "sam_serve_execute_ns",
                    "Execute-stage latency by backend, nanoseconds",
                    "backend",
                    backend,
                );
                map.insert(backend.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Folds one resolved query's span into the histograms, the qps
    /// window, and — past the slow threshold — the event log.
    pub(crate) fn observe_span(&self, span: &QuerySpan, profile: Option<&ExecProfile>) {
        if !self.config.enabled {
            return;
        }
        for stage in Stage::ALL {
            self.stages[stage.index()].record(span.stage_ns(stage));
        }
        let total = span.total_ns();
        self.latency.record(total);
        self.execute_histogram(&span.backend).record(span.stage_ns(Stage::Execute));
        {
            let mut window = self.completions.lock().expect("telemetry window");
            window.push_back(Instant::now());
            let horizon = self.config.qps_window;
            while window.len() > MAX_WINDOW_SAMPLES || window.front().is_some_and(|t| t.elapsed() > horizon) {
                window.pop_front();
            }
        }
        if let Some(threshold) = self.config.slow_query {
            if total >= threshold.as_nanos() as u64 {
                self.slow_queries.inc();
                self.emit_event(span, profile);
            }
        }
    }

    fn emit_event(&self, span: &QuerySpan, profile: Option<&ExecProfile>) {
        let mut line = span.to_json();
        if let Some(p) = profile {
            // Splice a profile summary into the span object.
            line.pop();
            line.push_str(&format!(
                ",\"profile\":{{\"nodes\":{},\"total_tokens\":{},\"critical_path_ns\":{}}}}}",
                p.nodes.len(),
                p.total_tokens(),
                p.critical_path_ns()
            ));
        }
        let mut events = self.events.lock().expect("telemetry events");
        if let Some(file) = events.file.as_mut() {
            let _ = writeln!(file, "{line}");
        }
        events.ring.push_back(line);
        let cap = self.config.event_capacity.max(1);
        while events.ring.len() > cap {
            events.ring.pop_front();
        }
    }

    /// The retained slow-query events, oldest first.
    pub(crate) fn recent_events(&self) -> Vec<String> {
        self.events.lock().expect("telemetry events").ring.iter().cloned().collect()
    }

    /// Completions per second over the trailing window.
    fn qps(&self) -> f64 {
        let horizon = self.config.qps_window;
        let window = self.completions.lock().expect("telemetry window");
        let live = window.iter().filter(|t| t.elapsed() <= horizon).count();
        let secs = horizon.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            live as f64 / secs
        }
    }

    /// Copies the cache/store/pool state into the synced gauges, so both
    /// exposition surfaces agree with the typed snapshot.
    fn sync(&self, plans: &PlanCacheStats, store: &MaterializeStats, workers: &[WorkerStats]) {
        self.plan_gauges[0].set(plans.hits);
        self.plan_gauges[1].set(plans.misses);
        self.plan_gauges[2].set(plans.evictions);
        self.plan_gauges[3].set(plans.entries as u64);
        self.store_gauges[0].set(store.builds);
        self.store_gauges[1].set(store.hits);
        self.store_gauges[2].set(store.build_ns);
        self.window_qps.set(self.qps().round() as u64);
        for (w, stats) in workers.iter().enumerate() {
            let id = w.to_string();
            self.registry
                .gauge_with("sam_serve_worker_tasks", "Tasks executed per pool worker", "worker", &id)
                .set(stats.tasks);
            self.registry
                .gauge_with("sam_serve_worker_steals", "Tasks stolen per pool worker", "worker", &id)
                .set(stats.steals);
            self.registry
                .gauge_with("sam_serve_worker_busy_ns", "Busy nanoseconds per pool worker", "worker", &id)
                .set(stats.busy_ns);
        }
    }

    /// Renders the registry as Prometheus text exposition, after syncing
    /// the cache/store/pool gauges.
    pub(crate) fn render(
        &self,
        plans: &PlanCacheStats,
        store: &MaterializeStats,
        workers: &[WorkerStats],
    ) -> String {
        self.sync(plans, store, workers);
        self.registry.render_prometheus()
    }

    /// Builds the typed [`MetricsSnapshot`].
    pub(crate) fn snapshot(
        &self,
        plans: PlanCacheStats,
        store: MaterializeStats,
        workers: &[WorkerStats],
    ) -> MetricsSnapshot {
        self.sync(&plans, &store, workers);
        let uptime = self.started.elapsed();
        let uptime_ns = uptime.as_nanos().max(1) as f64;
        let finished = self.completed.get() + self.failed.get();
        MetricsSnapshot {
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            batches: self.batches.get(),
            batched_same_plan: self.batched_same_plan.get(),
            compile_hits: self.compile_hits.get(),
            compile_misses: self.compile_misses.get(),
            slow_queries: self.slow_queries.get(),
            plans,
            stages: self.stages.iter().map(|h| h.snapshot()).collect(),
            latency: self.latency.snapshot(),
            batch_size: self.batch_size.snapshot(),
            execute_by_backend: {
                let map = self.execute_by_backend.lock().expect("telemetry backends");
                let mut v: Vec<(String, HistogramSnapshot)> =
                    map.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect();
                v.sort_by(|a, b| a.0.cmp(&b.0));
                v
            },
            lane_depth_high_water: self.lane_depth.get(),
            window_qps: self.qps(),
            same_plan_rate: if finished == 0 {
                0.0
            } else {
                self.batched_same_plan.get() as f64 / finished as f64
            },
            store,
            workers: workers
                .iter()
                .map(|w| WorkerTelemetry {
                    tasks: w.tasks,
                    steals: w.steals,
                    busy_ns: w.busy_ns,
                    utilization: (w.busy_ns as f64 / uptime_ns).clamp(0.0, 1.0),
                })
                .collect(),
            uptime,
        }
    }
}
