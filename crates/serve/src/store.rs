//! The resident operand corpus: [`TensorStore`].
//!
//! A service's tensors are loaded once and then served to every query:
//! the store keeps raw COO operands by name (plus an optional preferred
//! storage format as per-tensor metadata) and materializes [`Tensor`]s
//! lazily — building the level structure for one `(stored tensor, bound
//! name, format)` combination exactly once, behind an [`Arc`] that every
//! subsequent query shares. Table 3 matrices load straight from the
//! `sam_tensor::suitesparse` catalog.

use sam_tensor::{suitesparse, CooTensor, Tensor, TensorFormat};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Counters over [`TensorStore::materialize`]: how often level structures
/// were actually built versus served from the cache, and the wall time the
/// builds cost. Feeds the service telemetry's store gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaterializeStats {
    /// Level structures built from COO.
    pub builds: u64,
    /// Materializations served from the cache.
    pub hits: u64,
    /// Total nanoseconds spent inside the builds.
    pub build_ns: u64,
}

/// A named, immutable corpus of operands with lazy per-format
/// materialization. See the module docs.
#[derive(Debug, Default)]
pub struct TensorStore {
    coos: BTreeMap<String, Arc<CooTensor>>,
    /// Per-tensor preferred storage format (advisory metadata: queries may
    /// still bind any format).
    formats: BTreeMap<String, TensorFormat>,
    /// Materialized `(stored name, bound name, format)` → tensor cache.
    materialized: Mutex<HashMap<(String, String, String), Arc<Tensor>>>,
    builds: AtomicU64,
    build_hits: AtomicU64,
    build_ns: AtomicU64,
}

impl TensorStore {
    /// An empty store.
    pub fn new() -> TensorStore {
        TensorStore::default()
    }

    /// Adds (or replaces) a raw COO operand under `name`.
    pub fn insert(&mut self, name: &str, coo: CooTensor) -> &mut Self {
        self.coos.insert(name.to_string(), Arc::new(coo));
        self
    }

    /// [`TensorStore::insert`] plus a preferred-format annotation.
    pub fn insert_with_format(&mut self, name: &str, coo: CooTensor, format: TensorFormat) -> &mut Self {
        self.insert(name, coo);
        self.formats.insert(name.to_string(), format);
        self
    }

    /// Loads a Table 3 SuiteSparse matrix from the `sam_tensor` catalog
    /// under its catalog name, deterministically instantiated from `seed`.
    /// Returns `false` when the catalog has no such matrix.
    pub fn load_table3(&mut self, name: &str, seed: u64) -> bool {
        match suitesparse::find(name) {
            Some(info) => {
                self.insert(name, info.instantiate(seed));
                true
            }
            None => false,
        }
    }

    /// The raw COO operand stored under `name`.
    pub fn coo(&self, name: &str) -> Option<&Arc<CooTensor>> {
        self.coos.get(name)
    }

    /// The preferred storage format recorded for `name`, if any.
    pub fn preferred_format(&self, name: &str) -> Option<&TensorFormat> {
        self.formats.get(name)
    }

    /// Stored tensor names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.coos.keys().map(String::as_str)
    }

    /// Number of stored operands.
    pub fn len(&self) -> usize {
        self.coos.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.coos.is_empty()
    }

    /// Number of distinct `(stored, bound, format)` tensors materialized
    /// so far.
    pub fn materialized_count(&self) -> usize {
        self.materialized.lock().expect("store cache").len()
    }

    /// The stored operand `stored`, materialized as a [`Tensor`] named
    /// `bound` in `format` — built once per combination, shared ever after.
    /// Returns `None` when `stored` is not in the corpus.
    pub fn materialize(&self, stored: &str, bound: &str, format: &TensorFormat) -> Option<Arc<Tensor>> {
        let coo = self.coos.get(stored)?;
        let key = (stored.to_string(), bound.to_string(), format.to_string());
        let mut cache = self.materialized.lock().expect("store cache");
        Some(match cache.entry(key) {
            Entry::Occupied(e) => {
                self.build_hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(e.get())
            }
            Entry::Vacant(v) => {
                let started = Instant::now();
                let tensor = Arc::new(Tensor::from_coo(bound, coo, format.clone()));
                self.builds.fetch_add(1, Ordering::Relaxed);
                self.build_ns.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                Arc::clone(v.insert(tensor))
            }
        })
    }

    /// Build-versus-hit counters over [`TensorStore::materialize`].
    pub fn materialize_stats(&self) -> MaterializeStats {
        MaterializeStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.build_hits.load(Ordering::Relaxed),
            build_ns: self.build_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_tensor::synth;

    #[test]
    fn materialization_is_cached_per_name_and_format() {
        let mut store = TensorStore::new();
        store.insert("B", synth::random_matrix_sparsity(10, 8, 0.8, 1));
        let a = store.materialize("B", "B", &TensorFormat::dcsr()).unwrap();
        let b = store.materialize("B", "B", &TensorFormat::dcsr()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.materialized_count(), 1);
        let c = store.materialize("B", "B", &TensorFormat::csr()).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        let d = store.materialize("B", "B2", &TensorFormat::dcsr()).unwrap();
        assert_eq!(d.name(), "B2", "bound name is baked into the tensor");
        assert_eq!(store.materialized_count(), 3);
        assert!(store.materialize("missing", "m", &TensorFormat::dcsr()).is_none());
        let stats = store.materialize_stats();
        assert_eq!((stats.builds, stats.hits), (3, 1));
        assert!(stats.build_ns > 0, "builds must accumulate wall time");
    }

    #[test]
    fn table3_matrices_load_from_the_catalog() {
        let mut store = TensorStore::new();
        assert!(store.load_table3("relat3", 7));
        assert!(!store.load_table3("not-a-matrix", 7));
        let coo = store.coo("relat3").unwrap();
        assert_eq!(coo.shape(), &[8, 5]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn preferred_formats_are_metadata_only() {
        let mut store = TensorStore::new();
        store.insert_with_format("c", synth::random_vector(12, 6, 2), TensorFormat::dense_vec());
        assert_eq!(store.preferred_format("c"), Some(&TensorFormat::dense_vec()));
        assert!(store.preferred_format("missing").is_none());
        // Queries may still bind any format.
        let t = store.materialize("c", "c", &TensorFormat::sparse_vec()).unwrap();
        assert_eq!(t.format(), &TensorFormat::sparse_vec());
    }
}
