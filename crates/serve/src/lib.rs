//! # sam-serve
//!
//! The resident tensor service: the ROADMAP's "compile once, execute many
//! times against a resident operand corpus" layer over the SAM execution
//! stack.
//!
//! Three pieces (each with detailed module docs):
//!
//! * [`TensorStore`] — the named operand corpus, loaded once (SuiteSparse
//!   Table 3 matrices come straight from the `sam_tensor` catalog), with
//!   per-tensor format metadata and lazy, shared per-format
//!   materialization.
//! * [`Service`] — async batched submission: [`Service::submit`] enqueues
//!   a [`Query`] onto bounded lanes and returns a [`QueryHandle`]; a
//!   coordinator compiles (compile cache), binds, plans (a sharded
//!   [`sam_exec::PlanCache`] of the service's own), batches same-plan
//!   queries and fans the batch over a work-stealing executor pool.
//!   Per-query backend selection by [`sam_exec::BackendSpec`].
//! * [`table1_workload`] — the mixed twelve-kernel Table 1 workload
//!   (integer-valued, bit-exact across backends) that the throughput
//!   bench and the equivalence tests share.
//! * Service telemetry — every query carries a lifecycle span
//!   (queue → compile → plan → batch → execute → resolve) feeding
//!   latency histograms and cache/batch/qps gauges, exposed as a typed
//!   [`Service::metrics_snapshot`], Prometheus text via
//!   [`Service::render_prometheus`], and JSONL slow-query events
//!   ([`TelemetryConfig::slow_query`]); per-query `ExecProfile`s survive
//!   the service path via [`Query::traced`].
//!
//! ```
//! use sam_serve::{table1_workload, Service};
//!
//! let (store, queries) = table1_workload(42);
//! let service = Service::new(store);
//! let handles: Vec<_> =
//!     queries.into_iter().map(|w| (w.name, service.submit(w.query))).collect();
//! for (name, handle) in handles {
//!     let run = handle.wait().unwrap_or_else(|e| panic!("{name}: {e}"));
//!     assert_eq!(run.backend, "fast-serial");
//! }
//! assert_eq!(service.stats().completed, 12);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod service;
pub mod store;
pub mod workload;

pub use metrics::{MetricsSnapshot, TelemetryConfig, WorkerTelemetry};
pub use service::{Query, QueryHandle, ServeError, Service, ServiceConfig, ServiceStats, TraceMode};
pub use store::{MaterializeStats, TensorStore};
pub use workload::{table1_workload, WorkloadQuery};
