//! The mixed Table 1 workload: the paper's twelve kernels as service
//! queries over one shared corpus.
//!
//! [`table1_workload`] builds a [`TensorStore`] holding every operand of
//! the twelve Table 1 expressions (operand names are suffixed per kernel —
//! `B_mv`, `B_mm`, … — so the corpus is one flat namespace) and the twelve
//! matching [`Query`] values. Operand values are integers, so every
//! partial sum is exact and service results can be compared bit-for-bit
//! against one-shot execution on any backend. The throughput bench and
//! the service equivalence tests both iterate exactly this workload.

use crate::service::Query;
use crate::store::TensorStore;
use sam_tensor::{synth, CooTensor, TensorFormat};
use std::sync::Arc;

/// Rounds a synthetic tensor's values to small integers so floating-point
/// sums are exact across backends and the service pipeline.
fn int_coo(coo: &CooTensor) -> CooTensor {
    CooTensor::from_entries(
        coo.shape().to_vec(),
        coo.entries().iter().map(|(p, v)| (p.clone(), (v * 8.0).round() - 3.0)).collect(),
    )
    .expect("integerized tensor")
}

/// One named query of the mixed workload.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Table 1 kernel name (`"SpMV"`, `"MTTKRP"`, …).
    pub name: &'static str,
    /// The ready-to-submit query (default backend; callers re-route with
    /// [`Query::backend`]).
    pub query: Query,
}

/// Builds the corpus and the twelve Table 1 queries over it,
/// deterministically from `seed`. See the module docs.
pub fn table1_workload(seed: u64) -> (Arc<TensorStore>, Vec<WorkloadQuery>) {
    let mut store = TensorStore::new();
    let s = |k: u64| seed.wrapping_mul(1000).wrapping_add(k);

    // SpMV: x(i) = B_mv(i,j) * c_mv(j)
    store.insert("B_mv", int_coo(&synth::random_matrix_sparsity(14, 11, 0.8, s(1))));
    store.insert("c_mv", int_coo(&synth::random_vector(11, 8, s(2))));
    // SpM*SpM (Gustavson): X(i,j) = B_mm(i,k) * C_mm(k,j)
    store.insert("B_mm", int_coo(&synth::random_matrix_sparsity(14, 11, 0.8, s(3))));
    store.insert("C_mm", int_coo(&synth::random_matrix_sparsity(11, 12, 0.8, s(4))));
    // SDDMM: X(i,j) = B_sd(i,j) * C_sd(i,k) * D_sd(j,k), dense factors
    store.insert("B_sd", int_coo(&synth::random_matrix_sparsity(10, 9, 0.75, s(5))));
    store.insert_with_format("C_sd", int_coo(&synth::dense_matrix(10, 4, s(6))), TensorFormat::dense(2));
    store.insert_with_format("D_sd", int_coo(&synth::dense_matrix(9, 4, s(7))), TensorFormat::dense(2));
    // InnerProd: chi() = B_ip(i,j,k) * C_ip(i,j,k)
    store.insert("B_ip", int_coo(&synth::random_tensor3([6, 5, 7], 50, s(8))));
    store.insert("C_ip", int_coo(&synth::random_tensor3([6, 5, 7], 50, s(9))));
    // TTV: X(i,j) = B_tv(i,j,k) * c_tv(k)
    store.insert("B_tv", int_coo(&synth::random_tensor3([6, 5, 7], 50, s(10))));
    store.insert("c_tv", int_coo(&synth::random_vector(7, 5, s(11))));
    // TTM: X(i,j,k) = B_tm(i,j,l) * C_tm(k,l)
    store.insert("B_tm", int_coo(&synth::random_tensor3([6, 5, 7], 50, s(12))));
    store.insert("C_tm", int_coo(&synth::random_matrix_sparsity(8, 7, 0.6, s(13))));
    // MTTKRP: X(i,j) = B_mk(i,k,l) * C_mk(j,k) * D_mk(j,l)
    store.insert("B_mk", int_coo(&synth::random_tensor3([5, 4, 6], 30, s(14))));
    store.insert("C_mk", int_coo(&synth::random_matrix_sparsity(5, 4, 0.5, s(15))));
    store.insert("D_mk", int_coo(&synth::random_matrix_sparsity(5, 6, 0.5, s(16))));
    // Residual: x(i) = b_rs(i) - C_rs(i,j) * d_rs(j)
    store.insert("b_rs", int_coo(&synth::random_vector(14, 6, s(17))));
    store.insert("C_rs", int_coo(&synth::random_matrix_sparsity(14, 11, 0.7, s(18))));
    store.insert("d_rs", int_coo(&synth::random_vector(11, 7, s(19))));
    // MatTransMul: x(i) = alpha * B_mt(j,i) * c_mt(j) + beta * d_mt(i)
    store.insert("B_mt", int_coo(&synth::random_matrix_sparsity(13, 10, 0.7, s(20))));
    store.insert("c_mt", int_coo(&synth::random_vector(13, 7, s(21))));
    store.insert("d_mt", int_coo(&synth::random_vector(10, 6, s(22))));
    // MMAdd / Plus3: X(i,j) = B_ma(i,j) + C_ma(i,j) [+ D_ma(i,j)]
    store.insert("B_ma", int_coo(&synth::random_matrix_sparsity(12, 10, 0.75, s(23))));
    store.insert("C_ma", int_coo(&synth::random_matrix_sparsity(12, 10, 0.75, s(24))));
    store.insert("D_ma", int_coo(&synth::random_matrix_sparsity(12, 10, 0.75, s(25))));
    // Plus2: X(i,j,k) = B_p2(i,j,k) + C_p2(i,j,k)
    store.insert("B_p2", int_coo(&synth::random_tensor3([6, 5, 7], 50, s(26))));
    store.insert("C_p2", int_coo(&synth::random_tensor3([6, 5, 7], 50, s(27))));

    let queries = vec![
        WorkloadQuery {
            name: "SpMV",
            query: Query::new("x(i) = B_mv(i,j) * c_mv(j)").operand("B_mv").operand("c_mv"),
        },
        WorkloadQuery {
            name: "SpM*SpM",
            query: Query::new("X(i,j) = B_mm(i,k) * C_mm(k,j)").order("ikj").operand("B_mm").operand("C_mm"),
        },
        WorkloadQuery {
            name: "SDDMM",
            query: Query::new("X(i,j) = B_sd(i,j) * C_sd(i,k) * D_sd(j,k)")
                .format("C_sd", TensorFormat::dense(2))
                .format("D_sd", TensorFormat::dense(2))
                .operand("B_sd")
                .operand("C_sd")
                .operand("D_sd"),
        },
        WorkloadQuery {
            name: "InnerProd",
            query: Query::new("chi() = B_ip(i,j,k) * C_ip(i,j,k)").operand("B_ip").operand("C_ip"),
        },
        WorkloadQuery {
            name: "TTV",
            query: Query::new("X(i,j) = B_tv(i,j,k) * c_tv(k)").operand("B_tv").operand("c_tv"),
        },
        WorkloadQuery {
            name: "TTM",
            query: Query::new("X(i,j,k) = B_tm(i,j,l) * C_tm(k,l)").operand("B_tm").operand("C_tm"),
        },
        WorkloadQuery {
            name: "MTTKRP",
            query: Query::new("X(i,j) = B_mk(i,k,l) * C_mk(j,k) * D_mk(j,l)")
                .operand("B_mk")
                .operand("C_mk")
                .operand("D_mk"),
        },
        WorkloadQuery {
            name: "Residual",
            query: Query::new("x(i) = b_rs(i) - C_rs(i,j) * d_rs(j)")
                .operand("b_rs")
                .operand("C_rs")
                .operand("d_rs"),
        },
        WorkloadQuery {
            name: "MatTransMul",
            query: Query::new("x(i) = alpha * B_mt(j,i) * c_mt(j) + beta * d_mt(i)")
                .operand("B_mt")
                .operand("c_mt")
                .operand("d_mt")
                .scalar("alpha", 2.0)
                .scalar("beta", -3.0),
        },
        WorkloadQuery {
            name: "MMAdd",
            query: Query::new("X(i,j) = B_ma(i,j) + C_ma(i,j)").operand("B_ma").operand("C_ma"),
        },
        WorkloadQuery {
            name: "Plus3",
            query: Query::new("X(i,j) = B_ma(i,j) + C_ma(i,j) + D_ma(i,j)")
                .operand("B_ma")
                .operand("C_ma")
                .operand("D_ma"),
        },
        WorkloadQuery {
            name: "Plus2",
            query: Query::new("X(i,j,k) = B_p2(i,j,k) + C_p2(i,j,k)").operand("B_p2").operand("C_p2"),
        },
    ];
    (Arc::new(store), queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_workload_has_twelve_distinct_expressions_over_the_corpus() {
        let (store, queries) = table1_workload(7);
        assert_eq!(queries.len(), 12);
        let mut exprs: Vec<&str> = queries.iter().map(|w| w.query.expression()).collect();
        exprs.sort_unstable();
        exprs.dedup();
        assert_eq!(exprs.len(), 12, "every query expression is distinct");
        assert!(store.len() >= 24, "every operand name is distinct in the corpus");
    }

    #[test]
    fn workloads_are_deterministic_in_the_seed() {
        let (a, _) = table1_workload(3);
        let (b, _) = table1_workload(3);
        let (c, _) = table1_workload(4);
        assert_eq!(a.coo("B_mv").unwrap().entries(), b.coo("B_mv").unwrap().entries());
        assert_ne!(a.coo("B_mv").unwrap().entries(), c.coo("B_mv").unwrap().entries());
    }
}
