//! The resident query service: [`Service::submit`] and friends.
//!
//! A [`Service`] owns three long-lived pieces:
//!
//! * the operand corpus (an [`Arc<TensorStore>`]), loaded once;
//! * a **compile cache** (`(expression, schedule, format overrides) →
//!   Arc<ExecutableKernel>`) so each distinct expression lowers through
//!   custard once, and a **plan cache** (a [`PlanCache`] of its own, so a
//!   service's hit/miss counters are not entangled with the process-wide
//!   cache) so each workload shape plans once;
//! * the submission machinery: [`Service::submit`] enqueues a [`Query`]
//!   onto one of a fixed set of **bounded MPSC lanes** (same-expression
//!   queries hash to the same lane) and returns a [`QueryHandle`]
//!   immediately. A coordinator thread drains every lane on each doorbell
//!   ring, prepares the drained queries (compile → bind from the store →
//!   plan), **batches same-plan queries together**, and dispatches the
//!   batch over a work-stealing pool of executor workers
//!   ([`sam_exec::steal::StealPool`] — the same pool the parallel
//!   backends use; the coordinator participates as worker 0).
//!
//! Every query executes through the [`sam_exec::ExecRequest`] door with
//! its plan pre-resolved, on the backend its [`Query::backend`] selected —
//! so a service run is bit-identical to a one-shot request for the same
//! query, and the plan-cache hit path provably changes nothing but speed.
//! Failures (unknown tensors, compile errors, execution errors) surface
//! through [`QueryHandle::wait`], never as panics in the service threads.

use crate::store::TensorStore;
use custard::{ConcreteIndexNotation, ExecutableKernel, Formats, Schedule};
use sam_exec::steal::{StealPool, Task};
use sam_exec::{
    BackendSpec, ExecError, ExecRequest, Execution, Inputs, Plan, PlanCache, PlanCacheStats, Planner,
};
use sam_memory::MemoryConfig;
use sam_tensor::TensorFormat;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One query against the resident corpus: a tensor-index expression plus
/// how to schedule, bind and execute it.
#[derive(Debug, Clone)]
pub struct Query {
    expression: String,
    order: Option<String>,
    formats: Vec<(String, TensorFormat)>,
    bindings: Vec<(String, String)>,
    scalars: Vec<(String, f64)>,
    backend: BackendSpec,
    memory: Option<MemoryConfig>,
}

impl Query {
    /// A query for `expression` (custard tensor index notation, e.g.
    /// `"x(i) = B(i,j) * c(j)"`) on the default backend with no bindings.
    pub fn new(expression: &str) -> Query {
        Query {
            expression: expression.to_string(),
            order: None,
            formats: Vec::new(),
            bindings: Vec::new(),
            scalars: Vec::new(),
            backend: BackendSpec::default(),
            memory: None,
        }
    }

    /// Reorders the loop nest (custard `Schedule::reorder`, e.g. `"ikj"`).
    pub fn order(mut self, order: &str) -> Query {
        self.order = Some(order.to_string());
        self
    }

    /// Overrides the storage format the lowering assumes for one operand.
    pub fn format(mut self, operand: &str, format: TensorFormat) -> Query {
        self.formats.push((operand.to_string(), format));
        self
    }

    /// Binds expression operand `operand` to the stored tensor `stored`.
    pub fn bind(mut self, operand: &str, stored: &str) -> Query {
        self.bindings.push((operand.to_string(), stored.to_string()));
        self
    }

    /// [`Query::bind`] where the operand and the stored tensor share a
    /// name — the common case for a corpus keyed by expression names.
    pub fn operand(self, name: &str) -> Query {
        let stored = name.to_string();
        self.bind(&stored, &stored)
    }

    /// Binds a scalar operand (`alpha`, `beta`) by value.
    pub fn scalar(mut self, name: &str, value: f64) -> Query {
        self.scalars.push((name.to_string(), value));
        self
    }

    /// Selects the backend this query runs on (default: fast-serial).
    pub fn backend(mut self, spec: BackendSpec) -> Query {
        self.backend = spec;
        self
    }

    /// Overrides the finite-memory budget for a tiled-backend query.
    pub fn memory(mut self, memory: MemoryConfig) -> Query {
        self.memory = Some(memory);
        self
    }

    /// The expression text.
    pub fn expression(&self) -> &str {
        &self.expression
    }

    /// The backend this query selected.
    pub fn backend_spec(&self) -> BackendSpec {
        self.backend
    }

    /// The loop reorder requested with [`Query::order`], if any.
    pub fn reorder(&self) -> Option<&str> {
        self.order.as_deref()
    }

    /// The per-operand format overrides set with [`Query::format`].
    pub fn format_overrides(&self) -> &[(String, TensorFormat)] {
        &self.formats
    }

    /// The `(operand, stored tensor)` bindings set with [`Query::bind`].
    pub fn bindings(&self) -> &[(String, String)] {
        &self.bindings
    }

    /// The scalar operands set with [`Query::scalar`].
    pub fn scalar_bindings(&self) -> &[(String, f64)] {
        &self.scalars
    }
}

/// Why a submitted query failed. Delivered through [`QueryHandle::wait`].
#[derive(Debug)]
pub enum ServeError {
    /// A binding referenced a tensor the store does not hold.
    UnknownTensor {
        /// The missing stored-tensor name.
        name: String,
    },
    /// The expression failed to parse or lower, or a binding referenced an
    /// operand the compiled kernel does not use.
    Compile {
        /// The offending expression text.
        expression: String,
        /// The parser's or lowering's message.
        message: String,
    },
    /// Planning or execution failed.
    Exec(ExecError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTensor { name } => write!(f, "no tensor `{name}` in the store"),
            ServeError::Compile { expression, message } => {
                write!(f, "`{expression}` failed to compile: {message}")
            }
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> ServeError {
        ServeError::Exec(e)
    }
}

#[derive(Default)]
struct HandleState {
    slot: Mutex<Option<Result<Execution, ServeError>>>,
    done: Condvar,
}

impl HandleState {
    fn resolve(&self, result: Result<Execution, ServeError>) {
        *self.slot.lock().expect("handle slot") = Some(result);
        self.done.notify_all();
    }
}

/// The future side of one [`Service::submit`] call.
#[derive(Debug)]
pub struct QueryHandle {
    state: Arc<HandleState>,
}

impl fmt::Debug for HandleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandleState").field("done", &self.is_done()).finish()
    }
}

impl HandleState {
    fn is_done(&self) -> bool {
        self.slot.lock().expect("handle slot").is_some()
    }
}

impl QueryHandle {
    /// Blocks until the query finishes and returns its result.
    pub fn wait(self) -> Result<Execution, ServeError> {
        let mut slot = self.state.slot.lock().expect("handle slot");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.done.wait(slot).expect("handle slot");
        }
    }

    /// Whether the result is already available ([`QueryHandle::wait`]
    /// would return without blocking).
    pub fn is_done(&self) -> bool {
        self.state.is_done()
    }
}

/// Sizing knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Executor-pool participants (the coordinator counts as one; clamped
    /// to at least 1).
    pub workers: usize,
    /// Number of submission lanes.
    pub lanes: usize,
    /// Bounded depth of each lane; [`Service::submit`] blocks (applying
    /// backpressure) when its lane is full.
    pub lane_capacity: usize,
    /// Capacity of the service's plan cache.
    pub plan_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { workers: 4, lanes: 4, lane_capacity: 64, plan_capacity: 1024 }
    }
}

/// A snapshot of a service's counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Queries accepted by [`Service::submit`].
    pub submitted: u64,
    /// Queries that finished successfully.
    pub completed: u64,
    /// Queries that resolved to a [`ServeError`].
    pub failed: u64,
    /// Coordinator drain cycles that dispatched at least one query.
    pub batches: u64,
    /// Queries that rode in a same-plan group of two or more.
    pub batched_same_plan: u64,
    /// Compile-cache hits (expression already lowered).
    pub compile_hits: u64,
    /// Compile-cache misses (expression lowered now).
    pub compile_misses: u64,
    /// The service's plan-cache counters.
    pub plans: PlanCacheStats,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_same_plan: AtomicU64,
    compile_hits: AtomicU64,
    compile_misses: AtomicU64,
}

struct Job {
    query: Query,
    state: Arc<HandleState>,
}

struct Lane {
    queue: Mutex<VecDeque<Job>>,
    not_full: Condvar,
}

#[derive(Default)]
struct Door {
    rung: bool,
    closed: bool,
}

/// `(expression, reorder, format overrides)` — everything that changes
/// what `lower_exec` produces.
type CompileKey = (String, Option<String>, String);

/// A prepared query: compiled, bound and planned, ready to execute.
struct Ready {
    kernel: Arc<ExecutableKernel>,
    plan: Arc<Plan>,
    inputs: Inputs,
    backend: BackendSpec,
    memory: Option<MemoryConfig>,
    state: Arc<HandleState>,
}

struct Shared {
    store: Arc<TensorStore>,
    lanes: Vec<Lane>,
    lane_capacity: usize,
    door: Mutex<Door>,
    bell: Condvar,
    kernels: Mutex<HashMap<CompileKey, Arc<ExecutableKernel>>>,
    plans: Arc<PlanCache>,
    pool: StealPool<'static>,
    counters: Arc<Counters>,
}

impl Shared {
    fn ring(&self) {
        self.door.lock().expect("doorbell").rung = true;
        self.bell.notify_one();
    }

    /// Takes everything currently enqueued, releasing backpressured
    /// submitters.
    fn drain(&self) -> Vec<Job> {
        let mut jobs = Vec::new();
        for lane in &self.lanes {
            let drained = std::mem::take(&mut *lane.queue.lock().expect("lane"));
            if !drained.is_empty() {
                lane.not_full.notify_all();
                jobs.extend(drained);
            }
        }
        jobs
    }

    /// Lowers the query's expression, through the compile cache.
    fn kernel(&self, query: &Query) -> Result<Arc<ExecutableKernel>, ServeError> {
        let mut sig: Vec<String> = query.formats.iter().map(|(n, f)| format!("{n}={f}")).collect();
        sig.sort();
        let key: CompileKey = (query.expression.clone(), query.order.clone(), sig.join(";"));
        if let Some(kernel) = self.kernels.lock().expect("kernels").get(&key) {
            self.counters.compile_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(kernel));
        }
        self.counters.compile_misses.fetch_add(1, Ordering::Relaxed);
        let compile_err =
            |message: String| ServeError::Compile { expression: query.expression.clone(), message };
        let assignment = custard::parse(&query.expression).map_err(|e| compile_err(e.to_string()))?;
        let schedule = match &query.order {
            Some(order) => Schedule::new().reorder(order),
            None => Schedule::new(),
        };
        let mut formats = Formats::new();
        for (name, format) in &query.formats {
            formats = formats.set(name, format.clone());
        }
        let cin = ConcreteIndexNotation::new(assignment, &schedule, formats);
        let kernel = Arc::new(custard::lower_exec(&cin).map_err(|e| compile_err(e.to_string()))?);
        // A concurrent miss may have inserted already; either kernel is
        // identical, keep the first.
        Ok(Arc::clone(self.kernels.lock().expect("kernels").entry(key).or_insert(kernel)))
    }

    /// Compile, bind from the store, and plan — everything short of
    /// executing.
    fn prepare(&self, query: &Query) -> Result<(Arc<ExecutableKernel>, Arc<Plan>, Inputs), ServeError> {
        let kernel = self.kernel(query)?;
        let mut inputs = Inputs::new();
        for (operand, stored) in &query.bindings {
            let format =
                kernel.formats.iter().find(|(n, _)| n == operand).map(|(_, f)| f.clone()).ok_or_else(
                    || ServeError::Compile {
                        expression: query.expression.clone(),
                        message: format!("binding `{operand}` is not an operand of this expression"),
                    },
                )?;
            let tensor = self
                .store
                .materialize(stored, operand, &format)
                .ok_or_else(|| ServeError::UnknownTensor { name: stored.clone() })?;
            inputs = inputs.shared(tensor);
        }
        for (name, value) in &query.scalars {
            inputs = inputs.scalar(name, *value);
        }
        let plan = Planner::with_cache(Arc::clone(&self.plans))
            .plan(&kernel.graph, &inputs)
            .map_err(|e| ServeError::Exec(ExecError::from(e)))?;
        Ok((kernel, plan, inputs))
    }

    /// Prepares a drained batch, groups same-plan queries, and runs the
    /// whole batch over the pool (the calling coordinator participates as
    /// worker 0).
    fn run_jobs(&self, jobs: Vec<Job>) {
        let mut groups: HashMap<(usize, BackendSpec), Vec<Ready>> = HashMap::new();
        for job in jobs {
            match self.prepare(&job.query) {
                Ok((kernel, plan, inputs)) => {
                    let group = (Arc::as_ptr(&plan) as usize, job.query.backend);
                    groups.entry(group).or_default().push(Ready {
                        kernel,
                        plan,
                        inputs,
                        backend: job.query.backend,
                        memory: job.query.memory,
                        state: job.state,
                    });
                }
                Err(e) => {
                    self.counters.failed.fetch_add(1, Ordering::Relaxed);
                    job.state.resolve(Err(e));
                }
            }
        }
        if groups.is_empty() {
            return;
        }
        // One task per same-plan chunk: chunks share the plan Arc and are
        // sized so a large group still spreads across the whole pool.
        let workers = self.pool.workers();
        let mut tasks: Vec<Task<'static>> = Vec::new();
        for (_, group) in groups {
            if group.len() > 1 {
                self.counters.batched_same_plan.fetch_add(group.len() as u64, Ordering::Relaxed);
            }
            let chunk_len = group.len().div_ceil(workers).max(1);
            let mut group = group.into_iter().peekable();
            while group.peek().is_some() {
                let chunk: Vec<Ready> = group.by_ref().take(chunk_len).collect();
                let counters = Arc::clone(&self.counters);
                tasks.push(Box::new(move |_w| {
                    for ready in chunk {
                        let mut request = ExecRequest::new(&ready.kernel.graph, &ready.inputs)
                            .backend(ready.backend)
                            .planned(Arc::clone(&ready.plan));
                        if let Some(memory) = ready.memory {
                            request = request.memory(memory);
                        }
                        let result = request.run();
                        let counter = if result.is_ok() { &counters.completed } else { &counters.failed };
                        counter.fetch_add(1, Ordering::Relaxed);
                        ready.state.resolve(result.map_err(ServeError::from));
                    }
                }));
            }
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.pool.run_batch(tasks);
    }

    /// The coordinator thread: sleep on the doorbell, drain, dispatch;
    /// on close, drain what is left, then stop the pool.
    fn coordinate(&self) {
        loop {
            let closed = {
                let mut door = self.door.lock().expect("doorbell");
                while !door.rung && !door.closed {
                    door = self.bell.wait(door).expect("doorbell");
                }
                door.rung = false;
                door.closed
            };
            loop {
                let jobs = self.drain();
                if jobs.is_empty() {
                    break;
                }
                self.run_jobs(jobs);
            }
            if closed {
                break;
            }
        }
        self.pool.shutdown();
    }
}

/// The resident tensor service. See the module docs for the moving parts;
/// see [`Service::submit`] for the query lifecycle.
pub struct Service {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service").field("stats", &self.stats()).finish()
    }
}

impl Service {
    /// A service over `store` with default [`ServiceConfig`].
    pub fn new(store: Arc<TensorStore>) -> Service {
        Service::with_config(store, ServiceConfig::default())
    }

    /// A service over `store`, sized by `config`.
    pub fn with_config(store: Arc<TensorStore>, config: ServiceConfig) -> Service {
        let shared = Arc::new(Shared {
            store,
            lanes: (0..config.lanes.max(1))
                .map(|_| Lane { queue: Mutex::new(VecDeque::new()), not_full: Condvar::new() })
                .collect(),
            lane_capacity: config.lane_capacity.max(1),
            door: Mutex::new(Door::default()),
            bell: Condvar::new(),
            kernels: Mutex::new(HashMap::new()),
            plans: Arc::new(PlanCache::new(config.plan_capacity)),
            pool: StealPool::new(config.workers, false),
            counters: Arc::new(Counters::default()),
        });
        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || shared.coordinate()));
        }
        for w in 1..shared.pool.workers() {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || shared.pool.worker_loop(w)));
        }
        Service { shared, threads }
    }

    /// Enqueues `query` and returns immediately. The query is compiled
    /// (compile cache), bound against the store, planned (plan cache),
    /// batched with same-plan queries and executed on its selected
    /// backend; the outcome — success or any error along that path —
    /// arrives through the returned handle's [`QueryHandle::wait`].
    ///
    /// Submission is bounded: when the query's lane is full, `submit`
    /// blocks until the coordinator drains it.
    pub fn submit(&self, query: Query) -> QueryHandle {
        let state = Arc::new(HandleState::default());
        let handle = QueryHandle { state: Arc::clone(&state) };
        let mut hasher = DefaultHasher::new();
        query.expression.hash(&mut hasher);
        let lane = &self.shared.lanes[(hasher.finish() as usize) % self.shared.lanes.len()];
        {
            let mut queue = lane.queue.lock().expect("lane");
            while queue.len() >= self.shared.lane_capacity {
                queue = lane.not_full.wait(queue).expect("lane");
            }
            queue.push_back(Job { query, state });
        }
        self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.ring();
        handle
    }

    /// The operand corpus this service serves.
    pub fn store(&self) -> &Arc<TensorStore> {
        &self.shared.store
    }

    /// This service's plan-cache counters.
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.shared.plans.stats()
    }

    /// A snapshot of every service counter.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_same_plan: c.batched_same_plan.load(Ordering::Relaxed),
            compile_hits: c.compile_hits.load(Ordering::Relaxed),
            compile_misses: c.compile_misses.load(Ordering::Relaxed),
            plans: self.shared.plans.stats(),
        }
    }
}

impl Drop for Service {
    /// Stops accepting work, finishes everything already enqueued, and
    /// joins the coordinator and worker threads.
    fn drop(&mut self) {
        self.shared.door.lock().expect("doorbell").closed = true;
        self.shared.bell.notify_all();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}
