//! The resident query service: [`Service::submit`] and friends.
//!
//! A [`Service`] owns three long-lived pieces:
//!
//! * the operand corpus (an [`Arc<TensorStore>`]), loaded once;
//! * a **compile cache** (`(expression, schedule, format overrides) →
//!   Arc<ExecutableKernel>`) so each distinct expression lowers through
//!   custard once, and a **plan cache** (a [`PlanCache`] of its own, so a
//!   service's hit/miss counters are not entangled with the process-wide
//!   cache) so each workload shape plans once;
//! * the submission machinery: [`Service::submit`] enqueues a [`Query`]
//!   onto one of a fixed set of **bounded MPSC lanes** (same-expression
//!   queries hash to the same lane) and returns a [`QueryHandle`]
//!   immediately. A coordinator thread drains every lane on each doorbell
//!   ring, prepares the drained queries (compile → bind from the store →
//!   plan), **batches same-plan queries together**, and dispatches the
//!   batch over a work-stealing pool of executor workers
//!   ([`sam_exec::steal::StealPool`] — the same pool the parallel
//!   backends use; the coordinator participates as worker 0).
//!
//! Every query executes through the [`sam_exec::ExecRequest`] door with
//! its plan pre-resolved, on the backend its [`Query::backend`] selected —
//! so a service run is bit-identical to a one-shot request for the same
//! query, and the plan-cache hit path provably changes nothing but speed.
//! Failures (unknown tensors, compile errors, execution errors) surface
//! through [`QueryHandle::wait`], never as panics in the service threads.

use crate::metrics::{MetricsSnapshot, Telemetry, TelemetryConfig};
use crate::store::TensorStore;
use custard::{ConcreteIndexNotation, ExecutableKernel, Formats, Schedule};
use sam_exec::steal::{StealPool, Task};
use sam_exec::{
    BackendSpec, ExecError, ExecRequest, Execution, Inputs, Plan, PlanCache, PlanCacheStats, PlanError,
    Planner,
};
use sam_memory::MemoryConfig;
use sam_tensor::TensorFormat;
use sam_trace::{CountersSink, QuerySpan, Stage, TraceSink};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Whether (and how) one query's execution is traced — the service-path
/// equivalent of [`ExecRequest::traced`].
#[derive(Clone, Default)]
pub enum TraceMode {
    /// No per-execution instrumentation (the default).
    #[default]
    Off,
    /// Drive a service-created [`CountersSink`] so the resolved
    /// [`Execution::profile`] carries an `ExecProfile` — the `run_traced`
    /// semantics, surviving the service path.
    Profile,
    /// Drive this caller-owned sink (a `ChromeTraceSink`, say).
    Sink(Arc<dyn TraceSink + Send + Sync>),
}

impl fmt::Debug for TraceMode {
    // Custom sinks are opaque; print the variant only.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceMode::Off => f.write_str("Off"),
            TraceMode::Profile => f.write_str("Profile"),
            TraceMode::Sink(_) => f.write_str("Sink(..)"),
        }
    }
}

/// One query against the resident corpus: a tensor-index expression plus
/// how to schedule, bind and execute it.
#[derive(Debug, Clone)]
pub struct Query {
    expression: String,
    order: Option<String>,
    formats: Vec<(String, TensorFormat)>,
    bindings: Vec<(String, String)>,
    scalars: Vec<(String, f64)>,
    backend: BackendSpec,
    memory: Option<MemoryConfig>,
    traced: TraceMode,
}

impl Query {
    /// A query for `expression` (custard tensor index notation, e.g.
    /// `"x(i) = B(i,j) * c(j)"`) on the default backend with no bindings.
    pub fn new(expression: &str) -> Query {
        Query {
            expression: expression.to_string(),
            order: None,
            formats: Vec::new(),
            bindings: Vec::new(),
            scalars: Vec::new(),
            backend: BackendSpec::default(),
            memory: None,
            traced: TraceMode::Off,
        }
    }

    /// Reorders the loop nest (custard `Schedule::reorder`, e.g. `"ikj"`).
    pub fn order(mut self, order: &str) -> Query {
        self.order = Some(order.to_string());
        self
    }

    /// Overrides the storage format the lowering assumes for one operand.
    pub fn format(mut self, operand: &str, format: TensorFormat) -> Query {
        self.formats.push((operand.to_string(), format));
        self
    }

    /// Binds expression operand `operand` to the stored tensor `stored`.
    pub fn bind(mut self, operand: &str, stored: &str) -> Query {
        self.bindings.push((operand.to_string(), stored.to_string()));
        self
    }

    /// [`Query::bind`] where the operand and the stored tensor share a
    /// name — the common case for a corpus keyed by expression names.
    pub fn operand(self, name: &str) -> Query {
        let stored = name.to_string();
        self.bind(&stored, &stored)
    }

    /// Binds a scalar operand (`alpha`, `beta`) by value.
    pub fn scalar(mut self, name: &str, value: f64) -> Query {
        self.scalars.push((name.to_string(), value));
        self
    }

    /// Selects the backend this query runs on (default: fast-serial).
    pub fn backend(mut self, spec: BackendSpec) -> Query {
        self.backend = spec;
        self
    }

    /// Overrides the finite-memory budget for a tiled-backend query.
    pub fn memory(mut self, memory: MemoryConfig) -> Query {
        self.memory = Some(memory);
        self
    }

    /// Traces this query's execution: the resolved [`Execution::profile`]
    /// carries the per-node/per-channel `ExecProfile`, exactly as a
    /// one-shot `run_traced` would — at the cost of instrumenting that one
    /// execution.
    pub fn traced(mut self) -> Query {
        self.traced = TraceMode::Profile;
        self
    }

    /// Traces this query's execution through a caller-owned sink.
    pub fn traced_with(mut self, sink: Arc<dyn TraceSink + Send + Sync>) -> Query {
        self.traced = TraceMode::Sink(sink);
        self
    }

    /// The expression text.
    pub fn expression(&self) -> &str {
        &self.expression
    }

    /// The backend this query selected.
    pub fn backend_spec(&self) -> BackendSpec {
        self.backend
    }

    /// The loop reorder requested with [`Query::order`], if any.
    pub fn reorder(&self) -> Option<&str> {
        self.order.as_deref()
    }

    /// The per-operand format overrides set with [`Query::format`].
    pub fn format_overrides(&self) -> &[(String, TensorFormat)] {
        &self.formats
    }

    /// The `(operand, stored tensor)` bindings set with [`Query::bind`].
    pub fn bindings(&self) -> &[(String, String)] {
        &self.bindings
    }

    /// The scalar operands set with [`Query::scalar`].
    pub fn scalar_bindings(&self) -> &[(String, f64)] {
        &self.scalars
    }

    /// How this query's execution is traced.
    pub fn trace_mode(&self) -> &TraceMode {
        &self.traced
    }
}

/// Why a submitted query failed. Delivered through [`QueryHandle::wait`].
#[derive(Debug)]
pub enum ServeError {
    /// A binding referenced a tensor the store does not hold.
    UnknownTensor {
        /// The missing stored-tensor name.
        name: String,
    },
    /// The expression failed to parse or lower, or a binding referenced an
    /// operand the compiled kernel does not use.
    Compile {
        /// The offending expression text.
        expression: String,
        /// The parser's or lowering's message.
        message: String,
    },
    /// The static verifier (`sam-verify`) rejected the compiled graph
    /// against the bound tensors before planning — a wiring or binding
    /// defect, reported with every diagnostic rather than the planner's
    /// first error.
    Rejected {
        /// The offending expression text.
        expression: String,
        /// The verifier's error diagnostics.
        diagnostics: Vec<sam_verify::Diagnostic>,
    },
    /// Planning or execution failed.
    Exec(ExecError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTensor { name } => write!(f, "no tensor `{name}` in the store"),
            ServeError::Compile { expression, message } => {
                write!(f, "`{expression}` failed to compile: {message}")
            }
            ServeError::Rejected { expression, diagnostics } => {
                write!(f, "`{expression}` failed verification ({} error(s))", diagnostics.len())?;
                for d in diagnostics {
                    write!(f, "\n{d}")?;
                }
                Ok(())
            }
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> ServeError {
        ServeError::Exec(e)
    }
}

#[derive(Default)]
struct HandleState {
    slot: Mutex<Option<Result<Execution, ServeError>>>,
    done: Condvar,
}

impl HandleState {
    fn resolve(&self, result: Result<Execution, ServeError>) {
        *self.slot.lock().expect("handle slot") = Some(result);
        self.done.notify_all();
    }
}

/// The future side of one [`Service::submit`] call.
#[derive(Debug)]
pub struct QueryHandle {
    state: Arc<HandleState>,
}

impl fmt::Debug for HandleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandleState").field("done", &self.is_done()).finish()
    }
}

impl HandleState {
    fn is_done(&self) -> bool {
        self.slot.lock().expect("handle slot").is_some()
    }
}

impl QueryHandle {
    /// Blocks until the query finishes and returns its result.
    pub fn wait(self) -> Result<Execution, ServeError> {
        let mut slot = self.state.slot.lock().expect("handle slot");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.done.wait(slot).expect("handle slot");
        }
    }

    /// Whether the result is already available ([`QueryHandle::wait`]
    /// would return without blocking).
    pub fn is_done(&self) -> bool {
        self.state.is_done()
    }
}

/// Sizing knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Executor-pool participants (the coordinator counts as one; clamped
    /// to at least 1).
    pub workers: usize,
    /// Number of submission lanes.
    pub lanes: usize,
    /// Bounded depth of each lane; [`Service::submit`] blocks (applying
    /// backpressure) when its lane is full.
    pub lane_capacity: usize,
    /// Capacity of the service's plan cache.
    pub plan_capacity: usize,
    /// Lifecycle telemetry knobs (see [`TelemetryConfig`]).
    pub telemetry: TelemetryConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            lanes: 4,
            lane_capacity: 64,
            plan_capacity: 1024,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// A snapshot of a service's counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Queries accepted by [`Service::submit`].
    pub submitted: u64,
    /// Queries that finished successfully.
    pub completed: u64,
    /// Queries that resolved to a [`ServeError`].
    pub failed: u64,
    /// Coordinator drain cycles that dispatched at least one query.
    pub batches: u64,
    /// Queries that rode in a same-plan group of two or more.
    pub batched_same_plan: u64,
    /// Compile-cache hits (expression already lowered).
    pub compile_hits: u64,
    /// Compile-cache misses (expression lowered now).
    pub compile_misses: u64,
    /// The service's plan-cache counters.
    pub plans: PlanCacheStats,
}

struct Job {
    query: Query,
    state: Arc<HandleState>,
    /// When [`Service::submit`] enqueued the query (telemetry on only).
    enqueued: Option<Instant>,
}

struct Lane {
    queue: Mutex<VecDeque<Job>>,
    not_full: Condvar,
}

#[derive(Default)]
struct Door {
    rung: bool,
    closed: bool,
}

/// `(expression, reorder, format overrides)` — everything that changes
/// what `lower_exec` produces.
type CompileKey = (String, Option<String>, String);

/// A prepared query: compiled, bound and planned, ready to execute.
struct Ready {
    kernel: Arc<ExecutableKernel>,
    plan: Arc<Plan>,
    inputs: Inputs,
    backend: BackendSpec,
    memory: Option<MemoryConfig>,
    state: Arc<HandleState>,
    traced: TraceMode,
    /// The query's lifecycle span so far (telemetry on only).
    span: Option<QuerySpan>,
    /// When preparation finished — the batch stage starts here.
    prepared: Option<Instant>,
}

struct Shared {
    store: Arc<TensorStore>,
    lanes: Vec<Lane>,
    lane_capacity: usize,
    door: Mutex<Door>,
    bell: Condvar,
    kernels: Mutex<HashMap<CompileKey, Arc<ExecutableKernel>>>,
    plans: Arc<PlanCache>,
    pool: StealPool<'static>,
    telemetry: Arc<Telemetry>,
}

impl Shared {
    fn ring(&self) {
        self.door.lock().expect("doorbell").rung = true;
        self.bell.notify_one();
    }

    /// Takes everything currently enqueued, releasing backpressured
    /// submitters.
    fn drain(&self) -> Vec<Job> {
        let mut jobs = Vec::new();
        for lane in &self.lanes {
            let drained = std::mem::take(&mut *lane.queue.lock().expect("lane"));
            if !drained.is_empty() {
                lane.not_full.notify_all();
                jobs.extend(drained);
            }
        }
        jobs
    }

    /// Lowers the query's expression, through the compile cache. The
    /// returned flag says whether the cache already held the kernel.
    fn kernel(&self, query: &Query) -> Result<(Arc<ExecutableKernel>, bool), ServeError> {
        let mut sig: Vec<String> = query.formats.iter().map(|(n, f)| format!("{n}={f}")).collect();
        sig.sort();
        let key: CompileKey = (query.expression.clone(), query.order.clone(), sig.join(";"));
        if let Some(kernel) = self.kernels.lock().expect("kernels").get(&key) {
            self.telemetry.compile_hits.inc();
            return Ok((Arc::clone(kernel), true));
        }
        self.telemetry.compile_misses.inc();
        let compile_err =
            |message: String| ServeError::Compile { expression: query.expression.clone(), message };
        let assignment = custard::parse(&query.expression).map_err(|e| compile_err(e.to_string()))?;
        let schedule = match &query.order {
            Some(order) => Schedule::new().reorder(order),
            None => Schedule::new(),
        };
        let mut formats = Formats::new();
        for (name, format) in &query.formats {
            formats = formats.set(name, format.clone());
        }
        let cin = ConcreteIndexNotation::new(assignment, &schedule, formats);
        let kernel = Arc::new(custard::lower_exec(&cin).map_err(|e| compile_err(e.to_string()))?);
        // A concurrent miss may have inserted already; either kernel is
        // identical, keep the first.
        Ok((Arc::clone(self.kernels.lock().expect("kernels").entry(key).or_insert(kernel)), false))
    }

    /// Compile, bind from the store, and plan — everything short of
    /// executing. With a span, times the compile stage and the plan stage
    /// (binding rides in the plan stage; the store's own counters break
    /// out materialization cost) and marks the cache outcomes.
    fn prepare(
        &self,
        query: &Query,
        mut span: Option<&mut QuerySpan>,
    ) -> Result<(Arc<ExecutableKernel>, Arc<Plan>, Inputs), ServeError> {
        let compile_started = span.is_some().then(Instant::now);
        let (kernel, compile_hit) = self.kernel(query)?;
        if let (Some(span), Some(started)) = (span.as_deref_mut(), compile_started) {
            span.record(Stage::Compile, started.elapsed());
            span.compile_hit = compile_hit;
        }
        let plan_started = span.is_some().then(Instant::now);
        let mut inputs = Inputs::new();
        for (operand, stored) in &query.bindings {
            let format =
                kernel.formats.iter().find(|(n, _)| n == operand).map(|(_, f)| f.clone()).ok_or_else(
                    || ServeError::Compile {
                        expression: query.expression.clone(),
                        message: format!("binding `{operand}` is not an operand of this expression"),
                    },
                )?;
            let tensor = self
                .store
                .materialize(stored, operand, &format)
                .ok_or_else(|| ServeError::UnknownTensor { name: stored.clone() })?;
            inputs = inputs.shared(tensor);
        }
        for (name, value) in &query.scalars {
            inputs = inputs.scalar(name, *value);
        }
        // Only the coordinator plans against the service's private cache,
        // so a stats delta around this one call attributes the hit or miss
        // to this query.
        let plans_before = span.is_some().then(|| self.plans.stats());
        let plan = Planner::with_cache(Arc::clone(&self.plans)).plan(&kernel.graph, &inputs).map_err(
            |e| match e {
                PlanError::Rejected { diagnostics } => {
                    ServeError::Rejected { expression: query.expression.clone(), diagnostics }
                }
                other => ServeError::Exec(ExecError::from(other)),
            },
        )?;
        if let (Some(span), Some(started)) = (span, plan_started) {
            span.record(Stage::Plan, started.elapsed());
            if let Some(before) = plans_before {
                span.plan_hit = self.plans.stats().delta_since(&before).hits > 0;
            }
        }
        Ok((kernel, plan, inputs))
    }

    /// Prepares a drained batch, groups same-plan queries, and runs the
    /// whole batch over the pool (the calling coordinator participates as
    /// worker 0).
    fn run_jobs(&self, jobs: Vec<Job>) {
        // One clock read attributes queue wait for the whole drain.
        let drained_at = self.telemetry.now();
        let mut groups: HashMap<(usize, BackendSpec), Vec<Ready>> = HashMap::new();
        for job in jobs {
            let mut span = drained_at.map(|now| {
                let mut span = QuerySpan {
                    expression: job.query.expression.clone(),
                    backend: job.query.backend.to_string(),
                    ..QuerySpan::default()
                };
                if let Some(enqueued) = job.enqueued {
                    span.record(Stage::Queue, now.saturating_duration_since(enqueued));
                }
                span
            });
            match self.prepare(&job.query, span.as_mut()) {
                Ok((kernel, plan, inputs)) => {
                    let group = (Arc::as_ptr(&plan) as usize, job.query.backend);
                    groups.entry(group).or_default().push(Ready {
                        kernel,
                        plan,
                        inputs,
                        backend: job.query.backend,
                        memory: job.query.memory,
                        state: job.state,
                        traced: job.query.traced,
                        span,
                        prepared: self.telemetry.now(),
                    });
                }
                Err(e) => {
                    self.telemetry.failed.inc();
                    if let Some(mut span) = span {
                        span.error = Some(e.to_string());
                        self.telemetry.observe_span(&span, None);
                    }
                    job.state.resolve(Err(e));
                }
            }
        }
        if groups.is_empty() {
            return;
        }
        // One task per same-plan chunk: chunks share the plan Arc and are
        // sized so a large group still spreads across the whole pool.
        let workers = self.pool.workers();
        let mut tasks: Vec<Task<'static>> = Vec::new();
        for (_, mut group) in groups {
            if group.len() > 1 {
                self.telemetry.batched_same_plan.add(group.len() as u64);
            }
            self.telemetry.record_batch(group.len());
            let group_len = group.len() as u64;
            for ready in &mut group {
                if let Some(span) = ready.span.as_mut() {
                    span.batch_size = group_len;
                }
            }
            let chunk_len = group.len().div_ceil(workers).max(1);
            let mut group = group.into_iter().peekable();
            while group.peek().is_some() {
                let chunk: Vec<Ready> = group.by_ref().take(chunk_len).collect();
                let telemetry = Arc::clone(&self.telemetry);
                tasks.push(Box::new(move |_w| {
                    for mut ready in chunk {
                        let task_started = telemetry.now();
                        if let (Some(span), Some(started), Some(prepared)) =
                            (ready.span.as_mut(), task_started, ready.prepared)
                        {
                            span.record(Stage::Batch, started.saturating_duration_since(prepared));
                        }
                        // Any trace sink must outlive the request borrowing it.
                        let profile_sink;
                        let trace: Option<&dyn TraceSink> = match &ready.traced {
                            TraceMode::Off => None,
                            TraceMode::Profile => {
                                profile_sink = CountersSink::new();
                                Some(&profile_sink)
                            }
                            TraceMode::Sink(sink) => Some(sink.as_ref()),
                        };
                        let mut request = ExecRequest::new(&ready.kernel.graph, &ready.inputs)
                            .backend(ready.backend)
                            .planned(Arc::clone(&ready.plan));
                        if let Some(memory) = ready.memory {
                            request = request.memory(memory);
                        }
                        if let Some(trace) = trace {
                            request = request.traced(trace);
                        }
                        let result = request.run();
                        let resolve_started = telemetry.now();
                        if let (Some(span), Some(started), Some(ended)) =
                            (ready.span.as_mut(), task_started, resolve_started)
                        {
                            span.record(Stage::Execute, ended.saturating_duration_since(started));
                        }
                        let counter = if result.is_ok() { &telemetry.completed } else { &telemetry.failed };
                        counter.inc();
                        // Publish the span BEFORE waking the handle, so a
                        // waiter that snapshots right after `wait()` returns
                        // is guaranteed to see this query in the histograms.
                        // The resolve stage therefore covers the result
                        // bookkeeping, not the condvar notify itself.
                        if let (Some(span), Some(started)) = (ready.span.as_mut(), resolve_started) {
                            let profile = match &result {
                                Ok(run) => run.profile.clone(),
                                Err(e) => {
                                    span.error = Some(e.to_string());
                                    None
                                }
                            };
                            span.record(Stage::Resolve, started.elapsed());
                            telemetry.observe_span(span, profile.as_ref());
                        }
                        ready.state.resolve(result.map_err(ServeError::from));
                    }
                }));
            }
        }
        self.telemetry.batches.inc();
        self.pool.run_batch(tasks);
    }

    /// The coordinator thread: sleep on the doorbell, drain, dispatch;
    /// on close, drain what is left, then stop the pool.
    fn coordinate(&self) {
        loop {
            let closed = {
                let mut door = self.door.lock().expect("doorbell");
                while !door.rung && !door.closed {
                    door = self.bell.wait(door).expect("doorbell");
                }
                door.rung = false;
                door.closed
            };
            loop {
                let jobs = self.drain();
                if jobs.is_empty() {
                    break;
                }
                self.run_jobs(jobs);
            }
            if closed {
                break;
            }
        }
        self.pool.shutdown();
    }
}

/// The resident tensor service. See the module docs for the moving parts;
/// see [`Service::submit`] for the query lifecycle.
pub struct Service {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service").field("stats", &self.stats()).finish()
    }
}

impl Service {
    /// A service over `store` with default [`ServiceConfig`].
    pub fn new(store: Arc<TensorStore>) -> Service {
        Service::with_config(store, ServiceConfig::default())
    }

    /// A service over `store`, sized by `config`.
    pub fn with_config(store: Arc<TensorStore>, config: ServiceConfig) -> Service {
        let telemetry = Arc::new(Telemetry::new(config.telemetry.clone()));
        let shared = Arc::new(Shared {
            store,
            lanes: (0..config.lanes.max(1))
                .map(|_| Lane { queue: Mutex::new(VecDeque::new()), not_full: Condvar::new() })
                .collect(),
            lane_capacity: config.lane_capacity.max(1),
            door: Mutex::new(Door::default()),
            bell: Condvar::new(),
            kernels: Mutex::new(HashMap::new()),
            plans: Arc::new(PlanCache::new(config.plan_capacity)),
            // Pool timing rides the telemetry switch: worker busy_ns feeds
            // the utilization gauges.
            pool: StealPool::new(config.workers, telemetry.config.enabled),
            telemetry,
        });
        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || shared.coordinate()));
        }
        for w in 1..shared.pool.workers() {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || shared.pool.worker_loop(w)));
        }
        Service { shared, threads }
    }

    /// Enqueues `query` and returns immediately. The query is compiled
    /// (compile cache), bound against the store, planned (plan cache),
    /// batched with same-plan queries and executed on its selected
    /// backend; the outcome — success or any error along that path —
    /// arrives through the returned handle's [`QueryHandle::wait`].
    ///
    /// Submission is bounded: when the query's lane is full, `submit`
    /// blocks until the coordinator drains it.
    pub fn submit(&self, query: Query) -> QueryHandle {
        let state = Arc::new(HandleState::default());
        let handle = QueryHandle { state: Arc::clone(&state) };
        let mut hasher = DefaultHasher::new();
        query.expression.hash(&mut hasher);
        let lane = &self.shared.lanes[(hasher.finish() as usize) % self.shared.lanes.len()];
        let enqueued = self.shared.telemetry.now();
        let depth = {
            let mut queue = lane.queue.lock().expect("lane");
            while queue.len() >= self.shared.lane_capacity {
                queue = lane.not_full.wait(queue).expect("lane");
            }
            queue.push_back(Job { query, state, enqueued });
            queue.len()
        };
        self.shared.telemetry.record_lane_depth(depth);
        self.shared.telemetry.submitted.inc();
        self.shared.ring();
        handle
    }

    /// The operand corpus this service serves.
    pub fn store(&self) -> &Arc<TensorStore> {
        &self.shared.store
    }

    /// This service's plan-cache counters.
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.shared.plans.stats()
    }

    /// A snapshot of every service counter.
    pub fn stats(&self) -> ServiceStats {
        let t = &self.shared.telemetry;
        ServiceStats {
            submitted: t.submitted.get(),
            completed: t.completed.get(),
            failed: t.failed.get(),
            batches: t.batches.get(),
            batched_same_plan: t.batched_same_plan.get(),
            compile_hits: t.compile_hits.get(),
            compile_misses: t.compile_misses.get(),
            plans: self.shared.plans.stats(),
        }
    }

    /// A typed point-in-time view of the full telemetry surface: lifecycle
    /// counters, per-stage and per-backend latency histograms, batch-size
    /// distribution, plan/compile/store cache behavior, lane-depth
    /// high-water, rolling-window qps and per-worker utilization.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.telemetry.snapshot(
            self.shared.plans.stats(),
            self.shared.store.materialize_stats(),
            &self.shared.pool.stats(),
        )
    }

    /// The same metrics in the Prometheus text exposition format, ready to
    /// serve from a `/metrics` endpoint or dump next to a bench artifact.
    pub fn render_prometheus(&self) -> String {
        self.shared.telemetry.render(
            &self.shared.plans.stats(),
            &self.shared.store.materialize_stats(),
            &self.shared.pool.stats(),
        )
    }

    /// The retained slow-query JSONL events (oldest first). Empty unless
    /// [`TelemetryConfig::slow_query`] is set.
    pub fn recent_events(&self) -> Vec<String> {
        self.shared.telemetry.recent_events()
    }
}

impl Drop for Service {
    /// Stops accepting work, finishes everything already enqueued, and
    /// joins the coordinator and worker threads.
    fn drop(&mut self) {
        self.shared.door.lock().expect("doorbell").closed = true;
        self.shared.bell.notify_all();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}
