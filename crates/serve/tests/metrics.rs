//! Metrics-accuracy suite: the telemetry must agree with ground truth.
//!
//! Every claim the telemetry makes is checked against an independently
//! countable fact — resolved handles, submitted queries, forced
//! evictions — under concurrent submission, because metrics that drift
//! under load are worse than no metrics.

use sam_exec::BackendSpec;
use sam_serve::{table1_workload, Query, Service, ServiceConfig, TelemetryConfig, TensorStore};
use sam_trace::Stage;
use std::sync::Arc;
use std::time::Duration;

/// Eight threads submit the Table 1 workload concurrently; the counters
/// must equal the number of resolved handles, every stage histogram must
/// hold exactly one observation per query, and quantiles must be monotone.
#[test]
fn counters_and_histograms_match_resolved_handles_under_concurrency() {
    let (store, queries) = table1_workload(21);
    let service = Service::new(Arc::clone(&store));
    const THREADS: usize = 8;

    let resolved = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let service = &service;
                let queries = &queries;
                scope.spawn(move || {
                    let mut ok = 0u64;
                    for step in 0..queries.len() {
                        let w = &queries[(thread + step) % queries.len()];
                        if service.submit(w.query.clone()).wait().is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("submitter")).sum::<u64>()
    });

    let total = (THREADS * queries.len()) as u64;
    assert_eq!(resolved, total, "every handle resolves successfully");

    let snap = service.metrics_snapshot();
    assert_eq!(snap.submitted, total);
    assert_eq!(snap.completed, resolved, "completed counter equals resolved handles");
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.latency.count, total, "latency histogram holds one observation per query");
    for stage in Stage::ALL {
        assert_eq!(
            snap.stage(stage).count,
            total,
            "stage `{stage}` histogram holds one observation per query"
        );
    }
    let by_backend: u64 = snap.execute_by_backend.iter().map(|(_, h)| h.count).sum();
    assert_eq!(by_backend, total, "per-backend execute histograms partition the queries");

    // Quantiles are monotone on every surface that has observations.
    for (name, h) in std::iter::once(("latency", &snap.latency))
        .chain(Stage::ALL.iter().map(|s| (s.name(), snap.stage(*s))))
    {
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= h.max,
            "{name}: p50={p50} p90={p90} p99={p99} max={}",
            h.max
        );
    }

    // Execute time is real work; the end-to-end latency bounds it.
    assert!(snap.stage(Stage::Execute).sum > 0, "execute stage must accumulate time");
    assert!(snap.latency.sum >= snap.stage(Stage::Execute).sum);

    // 96 queries over 12 expressions: the caches must be warm.
    assert_eq!(snap.compile_hits + snap.compile_misses, total);
    assert_eq!(snap.compile_misses, queries.len() as u64);
    assert_eq!(snap.plans.misses, queries.len() as u64);
    assert!(snap.lane_depth_high_water >= 1);
    assert!(snap.uptime > Duration::ZERO);
    let busy: u64 = snap.workers.iter().map(|w| w.busy_ns).sum();
    assert!(busy > 0, "pool timing must be on when telemetry is enabled");
}

/// A one-entry plan cache forced to evict shows the misses and evictions
/// in the snapshot — and the batch-size histogram sees every group.
#[test]
fn forced_eviction_and_batching_show_up_in_the_snapshot() {
    let (store, queries) = table1_workload(22);
    let service = Service::with_config(
        Arc::clone(&store),
        ServiceConfig { plan_capacity: 1, ..ServiceConfig::default() },
    );
    for _ in 0..2 {
        let handles: Vec<_> = queries.iter().map(|w| service.submit(w.query.clone())).collect();
        for handle in handles {
            handle.wait().expect("query");
        }
    }
    let snap = service.metrics_snapshot();
    assert!(snap.plans.misses >= queries.len() as u64, "evicted shapes re-plan: {:?}", snap.plans);
    assert!(snap.plans.evictions > 0, "a one-entry cache under twelve shapes must evict");
    // Every executed query rode in exactly one group, so the group sizes
    // sum to the completions; and each drain dispatched at least one group.
    assert_eq!(snap.batch_size.sum, snap.completed);
    assert!(snap.batch_size.count >= snap.batches);
}

/// Prometheus text exposition: well-formed families, cumulative buckets,
/// and sample values that match the typed snapshot.
#[test]
fn prometheus_rendering_matches_the_snapshot() {
    let (store, queries) = table1_workload(23);
    let service = Service::new(Arc::clone(&store));
    for w in &queries {
        service.submit(w.query.clone()).wait().expect("query");
    }
    let snap = service.metrics_snapshot();
    let text = service.render_prometheus();

    assert!(text.contains(&format!("sam_serve_queries_total {}\n", snap.submitted)));
    assert!(text.contains(&format!("sam_serve_completed_total {}\n", snap.completed)));
    assert!(text.contains(&format!("sam_serve_query_latency_ns_count {}\n", snap.latency.count)));
    assert!(text.contains("# TYPE sam_serve_query_latency_ns histogram\n"));
    assert!(text.contains("sam_serve_stage_ns_bucket{stage=\"queue\",le=\"+Inf\"}"));
    assert!(text.contains(&format!("sam_serve_plan_misses {}\n", snap.plans.misses)));
    assert!(text.contains("sam_serve_worker_busy_ns{worker=\"0\"}"));

    // Every HELP/TYPE pair precedes its samples; bucket series are
    // cumulative and end at +Inf with the family count.
    let mut last_bucket: Option<u64> = None;
    for line in text.lines() {
        assert!(!line.is_empty());
        if line.contains("_bucket{") {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().expect("bucket sample");
            if line.contains("le=\"+Inf\"") {
                last_bucket = None;
            } else {
                if let Some(prev) = last_bucket {
                    assert!(value >= prev, "bucket series must be cumulative: {line}");
                }
                last_bucket = Some(value);
            }
        }
    }
}

/// A zero slow-query threshold captures every query as a JSONL event, in
/// the ring and in the event-log file.
#[test]
fn slow_query_events_capture_spans_as_jsonl() {
    let dir = std::env::temp_dir().join(format!("sam_serve_events_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("events.jsonl");
    let (store, queries) = table1_workload(24);
    let service = Service::with_config(
        Arc::clone(&store),
        ServiceConfig {
            telemetry: TelemetryConfig {
                slow_query: Some(Duration::ZERO),
                event_log: Some(path.clone()),
                ..TelemetryConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    for w in &queries {
        service.submit(w.query.clone()).wait().expect("query");
    }
    let events = service.recent_events();
    assert_eq!(events.len(), queries.len(), "a zero threshold captures every query");
    for event in &events {
        assert!(event.starts_with('{') && event.ends_with('}'), "not a JSON object: {event}");
        assert!(!event.contains('\n'), "JSONL events are single-line");
        assert!(event.contains("\"stages_ns\":{\"queue\":"), "span stages missing: {event}");
        assert!(event.contains("\"error\":null"));
    }
    assert_eq!(service.metrics_snapshot().slow_queries, queries.len() as u64);
    drop(service);
    let written = std::fs::read_to_string(&path).expect("event log file");
    assert_eq!(written.lines().count(), queries.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// With telemetry disabled the histograms stay empty and no events are
/// captured — but the lifecycle counters and the results are unchanged.
#[test]
fn disabled_telemetry_keeps_counters_but_skips_timing() {
    let (store, queries) = table1_workload(25);
    let service = Service::with_config(
        Arc::clone(&store),
        ServiceConfig {
            telemetry: TelemetryConfig {
                enabled: false,
                slow_query: Some(Duration::ZERO),
                ..TelemetryConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    for w in &queries {
        service.submit(w.query.clone()).wait().expect("query");
    }
    let snap = service.metrics_snapshot();
    assert_eq!(snap.submitted, queries.len() as u64);
    assert_eq!(snap.completed, queries.len() as u64);
    assert_eq!(snap.latency.count, 0, "no timing when disabled");
    for stage in Stage::ALL {
        assert_eq!(snap.stage(stage).count, 0);
    }
    assert!(service.recent_events().is_empty(), "no events when disabled");
    assert_eq!(snap.slow_queries, 0);
    assert_eq!(snap.lane_depth_high_water, 0);
}

/// `Query::traced` delivers the per-execution `ExecProfile` through the
/// service path, exactly like one-shot `run_traced`.
#[test]
fn traced_queries_carry_a_profile_through_the_service() {
    let mut store = TensorStore::new();
    store.insert("b", sam_tensor::synth::random_vector(128, 40, 5));
    store.insert("c", sam_tensor::synth::random_vector(128, 44, 6));
    let store = Arc::new(store);
    let service = Service::new(Arc::clone(&store));

    let base = Query::new("x(i) = b(i) * c(i)").operand("b").operand("c");
    let plain = service.submit(base.clone()).wait().expect("plain query");
    assert!(plain.profile.is_none(), "untraced queries must not pay for instrumentation");

    let traced =
        service.submit(base.clone().backend(BackendSpec::FastSerial).traced()).wait().expect("traced");
    let profile = traced.profile.expect("traced query must carry a profile");
    assert_eq!(profile.total_tokens(), traced.tokens);
    assert_eq!(traced.output, plain.output, "tracing must not change results");
}
