//! Service-vs-one-shot equivalence and plan-cache behavior.
//!
//! The load-bearing property: a query through the resident service —
//! compile cache, plan cache, batching lanes, executor pool and all —
//! returns an `Execution` bit-identical to a one-shot `ExecRequest` for
//! the same expression over the same operands, on every backend, from any
//! number of submitting threads. The workload is integer-valued, so
//! "identical" means exact equality of outputs and raw value streams.

use custard::{ConcreteIndexNotation, Formats, Schedule};
use sam_exec::{BackendSpec, ExecRequest, Execution, Inputs};
use sam_serve::{table1_workload, Query, Service, ServiceConfig, TensorStore};
use std::sync::Arc;

/// Runs `query` the one-shot way: compile with custard, bind the same
/// stored tensors, plan fresh (no cache), execute through the door.
fn one_shot(store: &TensorStore, query: &Query) -> Execution {
    let assignment = custard::parse(query.expression()).expect("parse");
    let schedule = match query.reorder() {
        Some(order) => Schedule::new().reorder(order),
        None => Schedule::new(),
    };
    let mut formats = Formats::new();
    for (name, format) in query.format_overrides() {
        formats = formats.set(name, format.clone());
    }
    let cin = ConcreteIndexNotation::new(assignment, &schedule, formats);
    let kernel = custard::lower_exec(&cin).expect("lower");
    let mut inputs = Inputs::new();
    for (operand, stored) in query.bindings() {
        let format =
            kernel.formats.iter().find(|(n, _)| n == operand).map(|(_, f)| f.clone()).expect("operand");
        inputs = inputs.shared(store.materialize(stored, operand, &format).expect("stored tensor"));
    }
    for (name, value) in query.scalar_bindings() {
        inputs = inputs.scalar(name, *value);
    }
    ExecRequest::new(&kernel.graph, &inputs).backend(query.backend_spec()).uncached().run().expect("one-shot")
}

fn assert_identical(name: &str, got: &Execution, want: &Execution) {
    assert_eq!(got.output, want.output, "{name}: output tensor diverged");
    assert_eq!(got.vals, want.vals, "{name}: raw value stream diverged");
    assert_eq!(got.backend, want.backend, "{name}: ran on the wrong backend");
}

/// A warm plan-cache hit produces an `Execution` bit-identical to a fresh
/// compile-and-plan — and the second round of the workload is all hits.
#[test]
fn plan_cache_hits_are_bit_identical_to_fresh_compiles() {
    let (store, queries) = table1_workload(11);
    let service = Service::new(Arc::clone(&store));

    let cold: Vec<Execution> = queries
        .iter()
        .map(|w| service.submit(w.query.clone()).wait().unwrap_or_else(|e| panic!("{}: {e}", w.name)))
        .collect();
    let cold_stats = service.plan_stats();
    assert_eq!(cold_stats.misses, 12, "twelve distinct shapes plan once each");

    let warm: Vec<Execution> = queries
        .iter()
        .map(|w| service.submit(w.query.clone()).wait().unwrap_or_else(|e| panic!("{}: {e}", w.name)))
        .collect();
    let warm_stats = service.plan_stats();
    assert_eq!(warm_stats.misses, cold_stats.misses, "the warm round must not re-plan");
    assert_eq!(warm_stats.hits, 12, "the warm round is all plan-cache hits");
    assert_eq!(service.stats().compile_hits, 12, "the warm round is all compile-cache hits");

    for ((w, cold), warm) in queries.iter().zip(&cold).zip(&warm) {
        assert_identical(w.name, warm, cold);
        assert_identical(w.name, cold, &one_shot(&store, &w.query));
    }
}

/// A plan cache too small for the workload evicts — and evicted shapes
/// simply re-plan, with results unchanged.
#[test]
fn eviction_under_a_tiny_capacity_keeps_results_exact() {
    let (store, queries) = table1_workload(12);
    let service = Service::with_config(
        Arc::clone(&store),
        ServiceConfig { plan_capacity: 1, ..ServiceConfig::default() },
    );

    for round in 0..2 {
        for w in &queries {
            let run = service.submit(w.query.clone()).wait().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_identical(w.name, &run, &one_shot(&store, &w.query));
            let _ = round;
        }
    }
    let stats = service.plan_stats();
    assert!(
        stats.evictions > 0,
        "twelve shapes against a one-entry-per-shard cache must evict (stats: {stats:?})"
    );
    assert!(stats.entries <= 8, "capacity stays bounded");
}

/// Eight threads submitting the mixed workload concurrently — with
/// per-query backend selection across all four backends — match the
/// serial one-shot results exactly, query for query.
#[test]
fn concurrent_submissions_from_eight_threads_match_one_shot_exactly() {
    let (store, queries) = table1_workload(13);
    let specs =
        [BackendSpec::FastSerial, BackendSpec::FastThreads(2), BackendSpec::Tiled, BackendSpec::Cycle];
    // Route each workload query to a backend, round-robin; precompute the
    // one-shot oracle for every (query, backend) pair.
    let routed: Vec<(&str, Query)> = queries
        .iter()
        .enumerate()
        .map(|(i, w)| (w.name, w.query.clone().backend(specs[i % specs.len()])))
        .collect();
    let oracle: Vec<Execution> = routed.iter().map(|(_, q)| one_shot(&store, q)).collect();

    let service = Service::new(Arc::clone(&store));
    std::thread::scope(|scope| {
        for thread in 0..8 {
            let service = &service;
            let routed = &routed;
            let oracle = &oracle;
            scope.spawn(move || {
                // Each thread walks the workload from its own offset so
                // lanes see interleaved expressions.
                for step in 0..routed.len() {
                    let i = (thread + step) % routed.len();
                    let (name, query) = &routed[i];
                    let run = service
                        .submit(query.clone())
                        .wait()
                        .unwrap_or_else(|e| panic!("{name} (thread {thread}): {e}"));
                    assert_identical(name, &run, &oracle[i]);
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.submitted, 8 * 12);
    assert_eq!(stats.completed, 8 * 12, "no query may fail (failed={})", stats.failed);
    // 96 submissions over 12 shapes: at most the first encounter of each
    // shape misses.
    assert_eq!(stats.plans.misses, 12);
    assert!(stats.plans.hit_rate() > 0.85, "warm traffic is nearly all hits: {:?}", stats.plans);
}

/// Submission failures surface through the handle, never as panics or
/// poisoned service state: the service keeps serving afterwards.
#[test]
fn errors_resolve_handles_and_leave_the_service_healthy() {
    let (store, queries) = table1_workload(14);
    let service = Service::new(Arc::clone(&store));

    let missing = Query::new("x(i) = B_mv(i,j) * c_mv(j)").operand("B_mv").bind("c_mv", "nope");
    let err = service.submit(missing).wait().unwrap_err();
    assert!(matches!(err, sam_serve::ServeError::UnknownTensor { ref name } if name == "nope"), "{err}");

    let unparsable = Query::new("x(i) = = B_mv(i,j)");
    let err = service.submit(unparsable).wait().unwrap_err();
    assert!(matches!(err, sam_serve::ServeError::Compile { .. }), "{err}");

    let unused =
        Query::new("x(i) = B_mv(i,j) * c_mv(j)").operand("B_mv").operand("c_mv").bind("ghost", "B_mv");
    let err = service.submit(unused).wait().unwrap_err();
    assert!(matches!(err, sam_serve::ServeError::Compile { .. }), "{err}");

    // The service still executes real work after all three failures.
    let w = &queries[0];
    let run = service.submit(w.query.clone()).wait().unwrap();
    assert_identical(w.name, &run, &one_shot(&store, &w.query));
    assert_eq!(service.stats().failed, 3);
}
