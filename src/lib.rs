//! # sam
//!
//! Umbrella crate for the Sparse Abstract Machine (SAM) reproduction. It
//! re-exports the workspace crates so examples and downstream users can pull
//! everything from one place:
//!
//! * [`streams`] — tokens, streams and stream statistics,
//! * [`tensor`] — fibertrees, formats, synthetic data and the dense oracle,
//! * [`primitives`] — the SAM dataflow blocks,
//! * [`sim`] — the cycle-approximate simulator,
//! * [`core`] — the SAM graph IR, graph builder, kernel graph catalog,
//!   wiring helpers and hand-scheduled kernel library,
//! * [`trace`] — the observability layer (trace sinks, per-node/per-channel
//!   profiles, Chrome trace export),
//! * [`exec`] — the graph-driven execution engine (the `ExecRequest` entry
//!   point, planner and plan cache, plus the cycle-approximate, fast
//!   functional and finite-memory tiled backends),
//! * [`serve`] — the resident tensor service (operand corpus, async
//!   batched query submission, per-query backend routing),
//! * [`memory`] — the analytic finite-memory / tiling model,
//! * [`tiles`] — the tiling subsystem (tile extraction, schedules with
//!   sparse tile skipping, LLB cache model, tile-merge reduction),
//! * [`custard`] — the compiler from tensor index notation to SAM graphs.
//!
//! See `examples/quickstart.rs` for an end-to-end tour and
//! `examples/custard_compile.rs` for the compile → IR → execute pipeline.

pub use custard;
pub use sam_core as core;
pub use sam_exec as exec;
pub use sam_memory as memory;
pub use sam_primitives as primitives;
pub use sam_serve as serve;
pub use sam_sim as sim;
pub use sam_streams as streams;
pub use sam_tensor as tensor;
pub use sam_tiles as tiles;
pub use sam_trace as trace;
