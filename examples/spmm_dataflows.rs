//! Compare the three SpM*SpM dataflow classes (inner product, Gustavson,
//! outer product) on the same pair of sparse matrices — the Figure 12 study
//! at a laptop-friendly size.
use sam::core::kernels::spmm::{spmm, SpmmDataflow};
use sam::tensor::synth;

fn main() {
    let b = synth::random_matrix_sparsity(120, 80, 0.95, 7);
    let c = synth::random_matrix_sparsity(80, 120, 0.95, 8);
    println!("X(i,j) = sum_k B(i,k) C(k,j) with 95% sparse 120x80 / 80x120 operands");
    for flow in [SpmmDataflow::InnerProduct, SpmmDataflow::LinearCombination, SpmmDataflow::OuterProduct] {
        let r = spmm(&b, &c, flow);
        println!("  {:<28} {:>10} cycles ({} result nonzeros)", flow.label(), r.cycles, r.output.nnz());
    }
}
