//! Compile tensor index notation to a SAM dataflow graph with Custard and
//! print its primitive composition and Graphviz DOT form.
use custard::{lower, parse, ConcreteIndexNotation, Formats, Schedule};

fn main() {
    let assignment = parse("X(i,j) = B(i,k) * C(k,j)").expect("valid tensor index notation");
    let cin = ConcreteIndexNotation::new(assignment, &Schedule::new().reorder("ikj"), Formats::new());
    let graph = lower(&cin);
    println!("expression : {}", cin.assignment);
    println!("loop order : {}", cin.order_string());
    println!("primitives : {}", graph.primitive_counts());
    println!("--- DOT ---");
    println!("{}", graph.to_dot());
}
