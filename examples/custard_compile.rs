//! The full compile → IR → execute pipeline: compile tensor index notation
//! to a SAM dataflow graph with Custard, print its primitive composition,
//! then run the *same graph* on both `sam-exec` backends and check the
//! results against the dense reference evaluator.
use custard::{lower, lower_exec, parse, ConcreteIndexNotation, Formats, Schedule};
use sam::exec::{CycleBackend, ExecRequest, Executor, FastBackend, Inputs};
use sam::tensor::reference::Environment;
use sam::tensor::{synth, Tensor, TensorFormat};

fn main() {
    let text = "X(i,j) = B(i,k) * C(k,j)";
    let assignment = parse(text).expect("valid tensor index notation");
    let cin = ConcreteIndexNotation::new(assignment.clone(), &Schedule::new().reorder("ikj"), Formats::new());

    // The schematic graph: primitive counts and DOT export (Table 1 view).
    let schematic = lower(&cin);
    println!("expression : {}", cin.assignment);
    println!("loop order : {}", cin.order_string());
    println!("primitives : {}", schematic.primitive_counts());

    // The executable graph: plan it, bind operands, run on both backends.
    let kernel = lower_exec(&cin).expect("expression is in the executable fragment");
    let b = synth::random_matrix_sparsity(120, 80, 0.95, 7);
    let c = synth::random_matrix_sparsity(80, 100, 0.95, 8);
    let mut inputs = Inputs::new();
    for (name, fmt) in &kernel.formats {
        let coo = if name == "B" { &b } else { &c };
        inputs = inputs.coo(name, coo, fmt.clone());
    }

    let mut env = Environment::new();
    env.insert("B", Tensor::from_coo("B", &b, TensorFormat::dense(2)).to_dense());
    env.insert("C", Tensor::from_coo("C", &c, TensorFormat::dense(2)).to_dense());
    env.bind_dims(&assignment, &[]);
    let expect = env.evaluate(&assignment).expect("reference evaluation");

    for backend in [&CycleBackend::default() as &dyn Executor, &FastBackend::default()] {
        let run =
            ExecRequest::new(&kernel.graph, &inputs).executor(backend).run().expect("execution succeeds");
        let ok = run.output.as_ref().expect("tensor output").to_dense().approx_eq(&expect);
        println!(
            "{:<6} backend: {:>9} tokens, {:>5} blocks, {} in {:?} — {}",
            run.backend,
            run.tokens,
            run.blocks,
            match run.cycles {
                Some(c) => format!("{c} cycles"),
                None => "no cycle model".to_string(),
            },
            run.elapsed,
            if ok { "matches dense reference" } else { "MISMATCH" }
        );
    }

    println!("--- DOT (executable graph) ---");
    println!("{}", kernel.graph.to_dot());
}
