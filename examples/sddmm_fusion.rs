//! The Figure 11 fusion study: fused SDDMM asymptotically beats the unfused
//! factorized form, and locating beats co-iteration when K is small.
use sam::core::kernels::sddmm::{sddmm, SddmmVariant};
use sam::tensor::synth;

fn main() {
    let (i, j) = (100, 100);
    for k in [1usize, 10] {
        let b = synth::random_matrix_sparsity(i, j, 0.95, 1);
        let c = synth::dense_matrix(i, k, 2);
        let d = synth::dense_matrix(j, k, 3);
        println!("SDDMM with K = {k}:");
        for variant in [SddmmVariant::Unfused, SddmmVariant::FusedCoiteration, SddmmVariant::FusedLocating] {
            let r = sddmm(&b, &c, &d, variant);
            println!("  {:<20} {:>10} cycles", variant.label(), r.cycles);
        }
    }
}
