//! Quickstart: build two sparse vectors, run the element-wise multiply SAM
//! graph on the simulator, and check the result against the dense oracle.
use sam::core::kernels::vecmul::{vec_elem_mul, VecFormat};
use sam::tensor::expr::table1;
use sam::tensor::reference::Environment;
use sam::tensor::{synth, Tensor, TensorFormat};

fn main() {
    let dim = 1000;
    let b = synth::random_vector(dim, 200, 1);
    let c = synth::random_vector(dim, 200, 2);

    let result = vec_elem_mul(&b, &c, dim, VecFormat::Crd);
    println!("x(i) = b(i) * c(i) over {dim}-element vectors");
    println!("  simulated blocks : {}", result.blocks);
    println!("  simulated cycles : {}", result.cycles);
    println!("  result nonzeros  : {}", result.output.nnz());

    // Check against the dense reference evaluator.
    let mut env = Environment::new();
    env.insert("b", Tensor::from_coo("b", &b, TensorFormat::dense_vec()).to_dense());
    env.insert("c", Tensor::from_coo("c", &c, TensorFormat::dense_vec()).to_dense());
    env.set_dim('i', dim);
    let expect = env.evaluate(&table1::vec_elem_mul()).unwrap();
    assert!(result.output.to_dense().approx_eq(&expect));
    println!("  matches the dense reference evaluator");
}
