//! The Section 6.5 backend case study: the OuterSPACE accelerator's
//! outer-product dataflow expressed as a SAM graph (paper Figure 16),
//! compared against Gustavson's dataflow on the same operands.
use sam::core::kernels::spmm::{spmm, SpmmDataflow};
use sam::tensor::synth;

fn main() {
    let b = synth::random_matrix_sparsity(100, 100, 0.98, 11);
    let c = synth::random_matrix_sparsity(100, 100, 0.98, 12);
    let outer = spmm(&b, &c, SpmmDataflow::OuterProduct);
    let rows = spmm(&b, &c, SpmmDataflow::LinearCombination);
    println!("OuterSPACE-style outer product : {:>9} cycles, {} blocks", outer.cycles, outer.blocks);
    println!("Gustavson linear combination   : {:>9} cycles, {} blocks", rows.cycles, rows.blocks);
    assert!(outer.output.approx_eq(&rows.output));
    println!("both dataflows produce the same result tensor ({} nonzeros)", outer.output.nnz());
}
