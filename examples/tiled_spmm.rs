//! The Figure 15 finite-memory model: tiled SpM*SpM runtime across matrix
//! dimensions for a fixed nonzero budget, showing the three regimes
//! (growing, tile-skipping, saturated).
use sam::memory::{figure15_sweep, MemoryConfig};

fn main() {
    let config = MemoryConfig::default();
    println!(
        "ExTensor-style tiled SpM*SpM model ({} GB/s DRAM, {} MiB LLB, {}x{} tiles)",
        config.dram_bandwidth_bytes_per_s / 1e9,
        config.llb_bytes / (1024 * 1024),
        config.tile,
        config.tile
    );
    for estimate in figure15_sweep(&[10000], &config) {
        println!(
            "  dim {:>6}: {:>12.0} cycles ({:>8.1} nonempty tiles)",
            estimate.dim, estimate.cycles, estimate.nonempty_tiles
        );
    }
}
