//! Workspace-level integration tests: every kernel is exercised through the
//! umbrella crate and checked against the dense reference evaluator, the
//! Custard-lowered graphs are checked for structural sanity, and the graph
//! catalog is executed on both `sam-exec` backends with results
//! cross-checked against each other and the dense reference.
use custard::{lower, lower_exec, parse, ConcreteIndexNotation, Formats, Schedule};
use sam::core::graphs;
use sam::core::kernels::spmm::{spmm_order, SpmmDataflow};
use sam::core::kernels::spmv::spmv;
use sam::core::kernels::vecmul::{vec_elem_mul, VecFormat};
use sam::exec::{CycleBackend, ExecRequest, Executor, FastBackend, Inputs};
use sam::tensor::expr::table1;
use sam::tensor::reference::Environment;
use sam::tensor::{synth, Tensor, TensorFormat};

#[test]
fn spmv_end_to_end_matches_oracle() {
    let b = synth::random_matrix_sparsity(50, 35, 0.92, 100);
    let c = synth::random_vector(35, 35, 101);
    let result = spmv(&b, &c);
    let mut env = Environment::new();
    env.insert("B", Tensor::from_coo("B", &b, TensorFormat::dense(2)).to_dense());
    env.insert("c", Tensor::from_coo("c", &c, TensorFormat::dense_vec()).to_dense());
    env.bind_dims(&table1::spmv(), &[]);
    let expect = env.evaluate(&table1::spmv()).unwrap();
    assert!(result.output.to_dense().approx_eq(&expect));
}

#[test]
fn every_spmm_order_is_functionally_identical() {
    let b = synth::random_matrix_sparsity(30, 20, 0.9, 102);
    let c = synth::random_matrix_sparsity(20, 25, 0.9, 103);
    let reference = spmm_order(&b, &c, "ikj").output.to_dense();
    for order in ["ijk", "jik", "jki", "kij", "kji"] {
        let out = spmm_order(&b, &c, order).output.to_dense();
        assert!(out.approx_eq(&reference), "order {order} diverged");
    }
}

#[test]
fn dataflow_order_changes_cycles_but_not_results() {
    let b = synth::random_matrix_sparsity(80, 40, 0.95, 104);
    let c = synth::random_matrix_sparsity(40, 80, 0.95, 105);
    let inner = spmm_order(&b, &c, "ijk");
    let rows = spmm_order(&b, &c, "ikj");
    assert!(rows.cycles < inner.cycles, "Gustavson should win on sparse inputs");
    assert!(inner.output.approx_eq(&rows.output));
    let _ = SpmmDataflow::from_order("ikj");
}

#[test]
fn figure13_formats_agree_on_runs_and_blocks_data() {
    let dim = 1024;
    for (b, c) in [synth::runs_vector_pair(dim, 200, 8, 106), synth::blocks_vector_pair(dim, 200, 8, 107)] {
        let reference = vec_elem_mul(&b, &c, dim, VecFormat::Crd).output.to_dense();
        for fmt in VecFormat::figure13_set() {
            let out = vec_elem_mul(&b, &c, dim, fmt).output.to_dense();
            assert!(out.approx_eq(&reference), "format {} diverged", fmt.label());
        }
    }
}

/// Every kernel graph in the catalog runs on both backends; FastBackend ==
/// CycleBackend == dense reference.
#[test]
fn every_kernel_graph_agrees_across_backends_and_reference() {
    let b = synth::random_matrix_sparsity(20, 16, 0.88, 200);
    let c = synth::random_matrix_sparsity(16, 18, 0.88, 201);
    let vb = synth::random_vector(120, 30, 202);
    let vc = synth::random_vector(120, 35, 203);
    let dense_c = synth::dense_matrix(20, 5, 204);
    let dense_d = synth::dense_matrix(16, 5, 205);
    let sv = synth::random_vector(16, 16, 206);

    let cases: Vec<(sam::core::SamGraph, Inputs, &str)> = vec![
        (
            graphs::vec_elem_mul(true),
            Inputs::new().coo("b", &vb, TensorFormat::sparse_vec()).coo("c", &vc, TensorFormat::sparse_vec()),
            "x(i) = b(i) * c(i)",
        ),
        (graphs::identity(), Inputs::new().coo("B", &b, TensorFormat::dcsr()), "X(i,j) = B(i,j)"),
        (
            graphs::spmv(),
            Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::dense_vec()),
            "x(i) = B(i,j) * c(j)",
        ),
        (
            graphs::spmm(SpmmDataflow::LinearCombination),
            Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsr()),
            "X(i,j) = B(i,k) * C(k,j)",
        ),
        (
            graphs::spmm(SpmmDataflow::InnerProduct),
            Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsc()),
            "X(i,j) = B(i,k) * C(k,j)",
        ),
        (
            graphs::spmm(SpmmDataflow::OuterProduct),
            Inputs::new().coo("B", &b, TensorFormat::dcsc()).coo("C", &c, TensorFormat::dcsr()),
            "X(i,j) = B(i,k) * C(k,j)",
        ),
        (
            graphs::sddmm_coiteration(),
            Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &dense_c, TensorFormat::dense(2)).coo(
                "D",
                &dense_d,
                TensorFormat::dense(2),
            ),
            "X(i,j) = B(i,j) * C(i,k) * D(j,k)",
        ),
    ];

    for (graph, inputs, text) in cases {
        // Dense reference for this expression over the bound operands.
        let assignment = parse(text).unwrap();
        let mut env = Environment::new();
        for (name, tensor) in inputs.iter() {
            env.insert(name, tensor.to_dense());
        }
        env.bind_dims(&assignment, &[]);
        let expect = env.evaluate(&assignment).unwrap();

        let cycle = ExecRequest::new(&graph, &inputs)
            .executor(&CycleBackend::default())
            .run()
            .unwrap_or_else(|e| panic!("{}: cycle backend failed: {e}", graph.name));
        let fast = ExecRequest::new(&graph, &inputs)
            .executor(&FastBackend::default())
            .run()
            .unwrap_or_else(|e| panic!("{}: fast backend failed: {e}", graph.name));
        let cycle_out = cycle.output.expect("tensor output");
        let fast_out = fast.output.expect("tensor output");
        assert_eq!(cycle_out, fast_out, "{}: backends disagree structurally", graph.name);
        assert!(
            cycle_out.to_dense().approx_eq(&expect),
            "{}: executor output diverged from the dense reference",
            graph.name
        );
        assert!(cycle.cycles.expect("cycle count") > 0);
    }
}

/// The custard pipeline end-to-end: compile SpMV from notation, execute on
/// both backends, compare with the hand-scheduled kernel's result.
#[test]
fn compiled_spmv_agrees_with_hand_kernel() {
    let b = synth::random_matrix_sparsity(40, 30, 0.92, 210);
    let c = synth::random_vector(30, 30, 211);
    let hand = spmv(&b, &c);

    let assignment = parse("x(i) = B(i,j) * c(j)").unwrap();
    let cin = ConcreteIndexNotation::new(
        assignment,
        &Schedule::new(),
        Formats::new().set("c", TensorFormat::dense_vec()),
    );
    let kernel = lower_exec(&cin).unwrap();
    let mut inputs = Inputs::new();
    for (name, fmt) in &kernel.formats {
        let coo = if name == "B" { &b } else { &c };
        inputs = inputs.coo(name, coo, fmt.clone());
    }
    for backend in [&CycleBackend::default() as &dyn Executor, &FastBackend::default()] {
        let run = ExecRequest::new(&kernel.graph, &inputs).executor(backend).run().unwrap();
        assert!(
            run.output.unwrap().to_dense().approx_eq(&hand.output.to_dense()),
            "{} backend disagreed with the hand-scheduled kernel",
            backend.name()
        );
    }
}

/// The fast backend moves strictly fewer or equal tokens than the cycle
/// backend (no fork duplication) while producing the same tensor.
#[test]
fn fast_backend_is_leaner_than_cycle_backend() {
    let b = synth::random_matrix_sparsity(30, 25, 0.9, 220);
    let c = synth::random_matrix_sparsity(25, 30, 0.9, 221);
    let graph = graphs::spmm(SpmmDataflow::LinearCombination);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsr());
    let cycle = ExecRequest::new(&graph, &inputs).executor(&CycleBackend::default()).run().unwrap();
    let fast = ExecRequest::new(&graph, &inputs).executor(&FastBackend::default()).run().unwrap();
    assert_eq!(cycle.output.unwrap(), fast.output.unwrap());
    assert!(fast.tokens <= cycle.tokens, "fast={} cycle={}", fast.tokens, cycle.tokens);
}

#[test]
fn custard_counts_are_stable_across_schedules() {
    let a = parse("X(i,j) = B(i,k) * C(k,j)").unwrap();
    for order in ["ijk", "ikj", "kij"] {
        let cin = ConcreteIndexNotation::new(a.clone(), &Schedule::new().reorder(order), Formats::new());
        let counts = lower(&cin).primitive_counts();
        assert_eq!(counts.level_scan, 4, "order {order}");
        assert_eq!(counts.alu, 1);
        assert_eq!(counts.array, 2);
    }
}
