//! Workspace-level integration tests: every kernel is exercised through the
//! umbrella crate and checked against the dense reference evaluator, and the
//! Custard-lowered graphs are checked for structural sanity.
use custard::{lower, parse, ConcreteIndexNotation, Formats, Schedule};
use sam::core::kernels::spmm::{spmm_order, SpmmDataflow};
use sam::core::kernels::spmv::spmv;
use sam::core::kernels::vecmul::{vec_elem_mul, VecFormat};
use sam::tensor::expr::table1;
use sam::tensor::reference::Environment;
use sam::tensor::{synth, Tensor, TensorFormat};

#[test]
fn spmv_end_to_end_matches_oracle() {
    let b = synth::random_matrix_sparsity(50, 35, 0.92, 100);
    let c = synth::random_vector(35, 35, 101);
    let result = spmv(&b, &c);
    let mut env = Environment::new();
    env.insert("B", Tensor::from_coo("B", &b, TensorFormat::dense(2)).to_dense());
    env.insert("c", Tensor::from_coo("c", &c, TensorFormat::dense_vec()).to_dense());
    env.bind_dims(&table1::spmv(), &[]);
    let expect = env.evaluate(&table1::spmv()).unwrap();
    assert!(result.output.to_dense().approx_eq(&expect));
}

#[test]
fn every_spmm_order_is_functionally_identical() {
    let b = synth::random_matrix_sparsity(30, 20, 0.9, 102);
    let c = synth::random_matrix_sparsity(20, 25, 0.9, 103);
    let reference = spmm_order(&b, &c, "ikj").output.to_dense();
    for order in ["ijk", "jik", "jki", "kij", "kji"] {
        let out = spmm_order(&b, &c, order).output.to_dense();
        assert!(out.approx_eq(&reference), "order {order} diverged");
    }
}

#[test]
fn dataflow_order_changes_cycles_but_not_results() {
    let b = synth::random_matrix_sparsity(80, 40, 0.95, 104);
    let c = synth::random_matrix_sparsity(40, 80, 0.95, 105);
    let inner = spmm_order(&b, &c, "ijk");
    let rows = spmm_order(&b, &c, "ikj");
    assert!(rows.cycles < inner.cycles, "Gustavson should win on sparse inputs");
    assert!(inner.output.approx_eq(&rows.output));
    let _ = SpmmDataflow::from_order("ikj");
}

#[test]
fn figure13_formats_agree_on_runs_and_blocks_data() {
    let dim = 1024;
    for (b, c) in [
        synth::runs_vector_pair(dim, 200, 8, 106),
        synth::blocks_vector_pair(dim, 200, 8, 107),
    ] {
        let reference = vec_elem_mul(&b, &c, dim, VecFormat::Crd).output.to_dense();
        for fmt in VecFormat::figure13_set() {
            let out = vec_elem_mul(&b, &c, dim, fmt).output.to_dense();
            assert!(out.approx_eq(&reference), "format {} diverged", fmt.label());
        }
    }
}

#[test]
fn custard_counts_are_stable_across_schedules() {
    let a = parse("X(i,j) = B(i,k) * C(k,j)").unwrap();
    for order in ["ijk", "ikj", "kij"] {
        let cin = ConcreteIndexNotation::new(a.clone(), &Schedule::new().reorder(order), Formats::new());
        let counts = lower(&cin).primitive_counts();
        assert_eq!(counts.level_scan, 4, "order {order}");
        assert_eq!(counts.alu, 1);
        assert_eq!(counts.array, 2);
    }
}
