//! Property-based tests over the core data structures and kernels.
use proptest::prelude::*;
use sam::core::kernels::vecmul::{vec_elem_mul, VecFormat};
use sam::streams::{Nested, Stream};
use sam::tensor::{CooTensor, Tensor, TensorFormat};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Stream encoding of nested lists round-trips for arbitrary two-level
    /// structures, including empty fibers.
    #[test]
    fn stream_nested_roundtrip(fibers in proptest::collection::vec(proptest::collection::vec(0u32..64, 0..6), 1..6)) {
        let nested: Nested<u32> = fibers.clone().into();
        let stream = Stream::from_nested(&nested);
        prop_assert!(stream.is_finished());
        prop_assert_eq!(stream.to_nested(), nested);
    }

    /// Fibertree construction preserves every nonzero for any format, and
    /// lookups agree with the staged COO data.
    #[test]
    fn tensor_roundtrip_across_formats(points in proptest::collection::btree_map((0u32..12, 0u32..12), 0.5f64..10.0, 1..30)) {
        let entries: Vec<(Vec<u32>, f64)> = points.iter().map(|((i, j), v)| (vec![*i, *j], *v)).collect();
        let coo = CooTensor::from_entries(vec![12, 12], entries).unwrap();
        for fmt in [TensorFormat::dcsr(), TensorFormat::csr(), TensorFormat::csc(), TensorFormat::dense(2)] {
            let t = Tensor::from_coo("A", &coo, fmt);
            prop_assert_eq!(t.nnz(), points.len());
            for ((i, j), v) in &points {
                prop_assert!((t.get(&[*i, *j]) - v).abs() < 1e-12);
            }
        }
    }

    /// The simulated element-wise multiply agrees with a directly computed
    /// product for arbitrary sparse vectors, in every storage configuration.
    #[test]
    fn vecmul_matches_direct_product(
        b in proptest::collection::btree_map(0u32..128, 0.5f64..2.0, 0..20),
        c in proptest::collection::btree_map(0u32..128, 0.5f64..2.0, 0..20),
    ) {
        let dim = 128;
        let to_coo = |m: &std::collections::BTreeMap<u32, f64>| {
            CooTensor::from_entries(vec![dim], m.iter().map(|(k, v)| (vec![*k], *v)).collect()).unwrap()
        };
        let cb = to_coo(&b);
        let cc = to_coo(&c);
        for fmt in [VecFormat::Crd, VecFormat::Dense, VecFormat::CrdSkip, VecFormat::Bv { width: 64 }] {
            let out = vec_elem_mul(&cb, &cc, dim, fmt).output.to_dense();
            for i in 0..dim as u32 {
                let expect = b.get(&i).copied().unwrap_or(0.0) * c.get(&i).copied().unwrap_or(0.0);
                prop_assert!((out.at(&[i]) - expect).abs() < 1e-9);
            }
        }
    }
}
