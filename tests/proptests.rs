//! Randomized property tests over the core data structures and kernels.
//!
//! The original proptest-based harness is reproduced with a deterministic
//! seeded generator (the build environment has no registry access for the
//! `proptest` crate): each property is checked over a sweep of seeds, so
//! failures are reproducible by seed.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sam::core::kernels::vecmul::{vec_elem_mul, VecFormat};
use sam::custard::{lower_exec, parse, ConcreteIndexNotation, Formats, Schedule};
use sam::exec::{CycleBackend, ExecRequest, Executor, FastBackend, Inputs, Parallelism, TiledBackend};
use sam::streams::{Nested, Stream};
use sam::tensor::{CooTensor, Tensor, TensorFormat};
use std::collections::BTreeMap;

const CASES: u64 = 32;

/// Stream encoding of nested lists round-trips for arbitrary two-level
/// structures, including empty fibers.
#[test]
fn stream_nested_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_fibers = 1 + rng.gen_range(0usize..5);
        let fibers: Vec<Vec<u32>> = (0..num_fibers)
            .map(|_| {
                let len = rng.gen_range(0usize..6);
                (0..len).map(|_| rng.gen_range(0u32..64)).collect()
            })
            .collect();
        let nested: Nested<u32> = fibers.clone().into();
        let stream = Stream::from_nested(&nested);
        assert!(stream.is_finished(), "seed {seed}");
        assert_eq!(stream.to_nested(), nested, "seed {seed}");
    }
}

/// Fibertree construction preserves every nonzero for any format, and
/// lookups agree with the staged COO data.
#[test]
fn tensor_roundtrip_across_formats() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let n = 1 + rng.gen_range(0usize..29);
        let mut points = BTreeMap::new();
        while points.len() < n {
            let key = (rng.gen_range(0u32..12), rng.gen_range(0u32..12));
            points.insert(key, 0.5 + 9.5 * rng.gen::<f64>());
        }
        let entries: Vec<(Vec<u32>, f64)> = points.iter().map(|((i, j), v)| (vec![*i, *j], *v)).collect();
        let coo = CooTensor::from_entries(vec![12, 12], entries).unwrap();
        for fmt in [TensorFormat::dcsr(), TensorFormat::csr(), TensorFormat::csc(), TensorFormat::dense(2)] {
            let t = Tensor::from_coo("A", &coo, fmt);
            assert_eq!(t.nnz(), points.len(), "seed {seed}");
            for ((i, j), v) in &points {
                assert!((t.get(&[*i, *j]) - v).abs() < 1e-12, "seed {seed} at ({i},{j})");
            }
        }
    }
}

/// The simulated element-wise multiply agrees with a directly computed
/// product for arbitrary sparse vectors, in every storage configuration.
#[test]
fn vecmul_matches_direct_product() {
    let dim = 128u32;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let mut draw_vec = || {
            let n = rng.gen_range(0usize..20);
            let mut m = BTreeMap::new();
            for _ in 0..n {
                m.insert(rng.gen_range(0..dim), 0.5 + 1.5 * rng.gen::<f64>());
            }
            m
        };
        let b = draw_vec();
        let c = draw_vec();
        let to_coo = |m: &BTreeMap<u32, f64>| {
            CooTensor::from_entries(vec![dim as usize], m.iter().map(|(k, v)| (vec![*k], *v)).collect())
                .unwrap()
        };
        let cb = to_coo(&b);
        let cc = to_coo(&c);
        for fmt in [VecFormat::Crd, VecFormat::Dense, VecFormat::CrdSkip, VecFormat::Bv { width: 64 }] {
            let out = vec_elem_mul(&cb, &cc, dim as usize, fmt).output.to_dense();
            for i in 0..dim {
                let expect = b.get(&i).copied().unwrap_or(0.0) * c.get(&i).copied().unwrap_or(0.0);
                assert!((out.at(&[i]) - expect).abs() < 1e-9, "seed {seed} fmt {} at {i}", fmt.label());
            }
        }
    }
}

/// A random integer-valued sparse tensor: integer values keep every
/// partial-sum order exact, so all backends — including the tiled sweep,
/// which re-associates additions across tiles — must agree bit for bit.
fn int_tensor(rng: &mut StdRng, shape: &[usize], fill: f64) -> CooTensor {
    let total: usize = shape.iter().product();
    // At least one stored entry: an entirely empty operand trips a known
    // output-assembly limitation on every backend (including serial), which
    // is an executor issue, not a scheduling one — out of scope here.
    let target = (((total as f64) * fill) as usize).max(1);
    let mut points = BTreeMap::new();
    for _ in 0..target {
        let key: Vec<u32> = shape.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
        points.insert(key, f64::from(1 + rng.gen_range(0u32..8)));
    }
    CooTensor::from_entries(shape.to_vec(), points.into_iter().collect()).unwrap()
}

/// Randomized cross-backend fuzzing of the whole compile → plan → execute
/// pipeline: seeded random Table-1-style expressions over random sparse
/// operands, lowered through Custard, must produce bit-identical results
/// on the cycle-accurate simulator, the serial fast executor, the
/// work-stealing fast executor (splitting forced so the seams run on any
/// host), and the tiled finite-memory backend (serial and parallel
/// sweeps). Failures print the reproducing seed.
#[test]
fn fuzzed_expressions_are_bit_identical_across_backends() {
    const FUZZ_CASES: u64 = 60;
    let mut tiled_ok = 0u64;
    for seed in 0..FUZZ_CASES {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let di = 2 + rng.gen_range(0usize..14);
        let dj = 2 + rng.gen_range(0usize..14);
        let dk = 2 + rng.gen_range(0usize..10);
        let mut fill = || 0.1 + 0.8 * rng.gen::<f64>();
        let (f1, f2, f3) = (fill(), fill(), fill());

        // One expression template per seed, cycling through the catalog.
        let mut schedule = Schedule::new();
        let mut formats = Formats::new();
        let mut scalars: Vec<(&str, f64)> = Vec::new();
        let (text, operands): (&str, Vec<(&str, CooTensor)>) = match seed % 10 {
            0 => (
                "x(i) = b(i) * c(i)",
                vec![("b", int_tensor(&mut rng, &[di], f1)), ("c", int_tensor(&mut rng, &[di], f2))],
            ),
            1 => (
                "x(i) = b(i) + c(i)",
                vec![("b", int_tensor(&mut rng, &[di], f1)), ("c", int_tensor(&mut rng, &[di], f2))],
            ),
            2 => (
                "x(i) = B(i,j) * c(j)",
                vec![("B", int_tensor(&mut rng, &[di, dj], f1)), ("c", int_tensor(&mut rng, &[dj], f2))],
            ),
            3 => (
                "X(i,j) = B(i,j) + C(i,j)",
                vec![("B", int_tensor(&mut rng, &[di, dj], f1)), ("C", int_tensor(&mut rng, &[di, dj], f2))],
            ),
            4 => {
                let orders = ["ijk", "ikj", "kij"];
                schedule = schedule.reorder(orders[rng.gen_range(0..3)]);
                (
                    "X(i,j) = B(i,k) * C(k,j)",
                    vec![
                        ("B", int_tensor(&mut rng, &[di, dk], f1)),
                        ("C", int_tensor(&mut rng, &[dk, dj], f2)),
                    ],
                )
            }
            5 => {
                formats = formats.set("C", TensorFormat::dense(2)).set("D", TensorFormat::dense(2));
                (
                    "X(i,j) = B(i,j) * C(i,k) * D(j,k)",
                    vec![
                        ("B", int_tensor(&mut rng, &[di, dj], f1)),
                        ("C", int_tensor(&mut rng, &[di, dk], 1.0)),
                        ("D", int_tensor(&mut rng, &[dj, dk], 1.0)),
                    ],
                )
            }
            6 => (
                "X(i,j) = B(i,j,k) * c(k)",
                vec![("B", int_tensor(&mut rng, &[di, dj, dk], f1)), ("c", int_tensor(&mut rng, &[dk], f2))],
            ),
            7 => {
                scalars.push(("alpha", f64::from(1 + rng.gen_range(0u32..4))));
                scalars.push(("beta", -(f64::from(1 + rng.gen_range(0u32..4)))));
                (
                    "x(i) = alpha * B(j,i) * c(j) + beta * d(i)",
                    vec![
                        ("B", int_tensor(&mut rng, &[dj, di], f1)),
                        ("c", int_tensor(&mut rng, &[dj], f2)),
                        ("d", int_tensor(&mut rng, &[di], f3)),
                    ],
                )
            }
            8 => (
                "chi() = B(i,j,k) * C(i,j,k)",
                vec![
                    ("B", int_tensor(&mut rng, &[di, dj, dk], f1)),
                    ("C", int_tensor(&mut rng, &[di, dj, dk], f2)),
                ],
            ),
            _ => (
                "x(i) = b(i) - C(i,j) * d(j)",
                vec![
                    ("b", int_tensor(&mut rng, &[di], f1)),
                    ("C", int_tensor(&mut rng, &[di, dj], f2)),
                    ("d", int_tensor(&mut rng, &[dj], f3)),
                ],
            ),
        };

        let assignment = parse(text).unwrap_or_else(|e| panic!("seed {seed}: parse `{text}`: {e}"));
        let cin = ConcreteIndexNotation::new(assignment, &schedule, formats);
        let kernel =
            lower_exec(&cin).unwrap_or_else(|e| panic!("seed {seed}: lowering `{text}` failed: {e}"));
        let mut inputs = Inputs::new();
        for (name, coo) in &operands {
            let fmt = kernel
                .formats
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("seed {seed}: operand `{name}` missing from derived formats"))
                .1
                .clone();
            inputs = inputs.coo(name, coo, fmt);
        }
        for &(name, value) in &scalars {
            inputs = inputs.scalar(name, value);
        }

        let serial = ExecRequest::new(&kernel.graph, &inputs)
            .executor(&FastBackend::serial())
            .run()
            .unwrap_or_else(|e| panic!("seed {seed}: `{text}` fast-serial failed: {e}"));

        let stealing = FastBackend::threads(4).with_split_threshold(1);
        for backend in [&CycleBackend::default() as &dyn Executor, &stealing] {
            let run = ExecRequest::new(&kernel.graph, &inputs)
                .executor(backend)
                .run()
                .unwrap_or_else(|e| panic!("seed {seed}: `{text}` on {} failed: {e}", backend.name()));
            assert_eq!(run.output, serial.output, "seed {seed}: `{text}` output on {}", backend.name());
            assert_eq!(run.vals, serial.vals, "seed {seed}: `{text}` vals on {}", backend.name());
        }

        // The tiled sweeps run where tiling supports the lowered graph;
        // serial and parallel tile schedules must agree with each other
        // (including on rejection) and with the untiled run.
        let ts = ExecRequest::new(&kernel.graph, &inputs).executor(&TiledBackend::with_tile(4)).run();
        let tp = ExecRequest::new(&kernel.graph, &inputs)
            .executor(&TiledBackend::with_tile(4).with_parallelism(Parallelism::Threads(3)))
            .run();
        match (ts, tp) {
            (Ok(s), Ok(p)) => {
                assert_eq!(s.output, serial.output, "seed {seed}: `{text}` tiled output");
                assert_eq!(s.vals, serial.vals, "seed {seed}: `{text}` tiled vals");
                assert_eq!(p.output, s.output, "seed {seed}: `{text}` parallel tiled output");
                assert_eq!(p.vals, s.vals, "seed {seed}: `{text}` parallel tiled vals");
                tiled_ok += 1;
            }
            (Err(_), Err(_)) => {}
            (s, p) => panic!(
                "seed {seed}: `{text}` tiled serial/parallel disagree on success: {:?} vs {:?}",
                s.map(|r| r.backend).map_err(|e| e.to_string()),
                p.map(|r| r.backend).map_err(|e| e.to_string()),
            ),
        }
    }
    assert!(
        tiled_ok * 2 >= FUZZ_CASES,
        "tiled backend rejected too many fuzz cases ({tiled_ok}/{FUZZ_CASES} succeeded)"
    );
}
