//! Randomized property tests over the core data structures and kernels.
//!
//! The original proptest-based harness is reproduced with a deterministic
//! seeded generator (the build environment has no registry access for the
//! `proptest` crate): each property is checked over a sweep of seeds, so
//! failures are reproducible by seed.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sam::core::kernels::vecmul::{vec_elem_mul, VecFormat};
use sam::streams::{Nested, Stream};
use sam::tensor::{CooTensor, Tensor, TensorFormat};
use std::collections::BTreeMap;

const CASES: u64 = 32;

/// Stream encoding of nested lists round-trips for arbitrary two-level
/// structures, including empty fibers.
#[test]
fn stream_nested_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_fibers = 1 + rng.gen_range(0usize..5);
        let fibers: Vec<Vec<u32>> = (0..num_fibers)
            .map(|_| {
                let len = rng.gen_range(0usize..6);
                (0..len).map(|_| rng.gen_range(0u32..64)).collect()
            })
            .collect();
        let nested: Nested<u32> = fibers.clone().into();
        let stream = Stream::from_nested(&nested);
        assert!(stream.is_finished(), "seed {seed}");
        assert_eq!(stream.to_nested(), nested, "seed {seed}");
    }
}

/// Fibertree construction preserves every nonzero for any format, and
/// lookups agree with the staged COO data.
#[test]
fn tensor_roundtrip_across_formats() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let n = 1 + rng.gen_range(0usize..29);
        let mut points = BTreeMap::new();
        while points.len() < n {
            let key = (rng.gen_range(0u32..12), rng.gen_range(0u32..12));
            points.insert(key, 0.5 + 9.5 * rng.gen::<f64>());
        }
        let entries: Vec<(Vec<u32>, f64)> = points.iter().map(|((i, j), v)| (vec![*i, *j], *v)).collect();
        let coo = CooTensor::from_entries(vec![12, 12], entries).unwrap();
        for fmt in [TensorFormat::dcsr(), TensorFormat::csr(), TensorFormat::csc(), TensorFormat::dense(2)] {
            let t = Tensor::from_coo("A", &coo, fmt);
            assert_eq!(t.nnz(), points.len(), "seed {seed}");
            for ((i, j), v) in &points {
                assert!((t.get(&[*i, *j]) - v).abs() < 1e-12, "seed {seed} at ({i},{j})");
            }
        }
    }
}

/// The simulated element-wise multiply agrees with a directly computed
/// product for arbitrary sparse vectors, in every storage configuration.
#[test]
fn vecmul_matches_direct_product() {
    let dim = 128u32;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let mut draw_vec = || {
            let n = rng.gen_range(0usize..20);
            let mut m = BTreeMap::new();
            for _ in 0..n {
                m.insert(rng.gen_range(0..dim), 0.5 + 1.5 * rng.gen::<f64>());
            }
            m
        };
        let b = draw_vec();
        let c = draw_vec();
        let to_coo = |m: &BTreeMap<u32, f64>| {
            CooTensor::from_entries(vec![dim as usize], m.iter().map(|(k, v)| (vec![*k], *v)).collect())
                .unwrap()
        };
        let cb = to_coo(&b);
        let cc = to_coo(&c);
        for fmt in [VecFormat::Crd, VecFormat::Dense, VecFormat::CrdSkip, VecFormat::Bv { width: 64 }] {
            let out = vec_elem_mul(&cb, &cc, dim as usize, fmt).output.to_dense();
            for i in 0..dim {
                let expect = b.get(&i).copied().unwrap_or(0.0) * c.get(&i).copied().unwrap_or(0.0);
                assert!((out.at(&[i]) - expect).abs() < 1e-9, "seed {seed} fmt {} at {i}", fmt.label());
            }
        }
    }
}
